"""Tests for the asyncio pebbling service (dedup, batching, cache-first)."""

import asyncio
import json

import pytest

from repro.service import (
    JobRequest,
    PebblingService,
    ServiceError,
    parse_request_file,
    run_request_file,
)
from repro.store import ResultStore


def _run(coroutine):
    return asyncio.run(coroutine)


class TestJobRequest:
    def test_validation(self):
        with pytest.raises(ServiceError, match="kind"):
            JobRequest(kind="teleport", workload="fig2").validate()
        with pytest.raises(ServiceError, match="workload"):
            JobRequest(kind="pebble").validate()
        with pytest.raises(ServiceError, match="budget"):
            JobRequest(kind="pebble", workload="fig2").validate()
        with pytest.raises(ServiceError, match="min_budget"):
            JobRequest(kind="sweep", workload="fig2", budget=4).validate()
        JobRequest(kind="sweep", workload="fig2").validate()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ServiceError, match="pebbels"):
            JobRequest.from_dict({"workload": "fig2", "pebbels": 4})
        request = JobRequest.from_dict(
            {"kind": "pebble", "workload": "fig2", "budget": 4}
        )
        assert request.budget == 4
        assert request.as_dict()["workload"] == "fig2"

    def test_requests_are_hashable_dedup_keys(self):
        a = JobRequest(kind="pebble", workload="fig2", budget=4)
        b = JobRequest(kind="pebble", workload="fig2", budget=4)
        assert a == b and hash(a) == hash(b)
        assert a != JobRequest(kind="pebble", workload="fig2", budget=5)


class TestService:
    def test_single_pebble_request(self):
        async def scenario():
            async with PebblingService(batch_window=0.0) as service:
                result = await service.submit(
                    JobRequest(kind="pebble", workload="fig2", budget=4,
                               time_limit=30)
                )
                return service, result

        service, result = _run(scenario())
        assert result.ok and result.source == "solver"
        assert result.payload["outcome"] == "solution"
        assert result.payload["steps"] == 6
        assert service.stats.solver_jobs == 1

    def test_identical_inflight_requests_deduplicate(self):
        request = JobRequest(kind="pebble", workload="fig2", budget=4,
                             time_limit=30)

        async def scenario():
            async with PebblingService(batch_window=0.05) as service:
                results = await service.run([request, request, request])
                return service, results

        service, results = _run(scenario())
        assert all(result.ok for result in results)
        assert {json.dumps(r.payload, sort_keys=True) for r in results} \
            == {json.dumps(results[0].payload, sort_keys=True)}
        assert service.stats.deduplicated == 2
        assert service.stats.solver_jobs == 1

    def test_distinct_requests_batch_into_one_round(self):
        requests = [
            JobRequest(kind="pebble", workload="fig2", budget=budget,
                       time_limit=30)
            for budget in (4, 5, 6)
        ]

        async def scenario():
            async with PebblingService(batch_window=0.1) as service:
                results = await service.run(requests)
                return service, results

        service, results = _run(scenario())
        assert [r.payload["steps"] for r in results] == [6, 5, 5]
        assert service.stats.batches == 1
        assert service.stats.solver_jobs == 3

    def test_cache_hits_skip_the_solver(self, tmp_path):
        db = str(tmp_path / "cache.db")
        request = JobRequest(kind="pebble", workload="fig2", budget=4,
                             time_limit=30)

        async def scenario():
            async with PebblingService(store=db, batch_window=0.0) as service:
                first = await service.submit(request)
                second = await service.submit(request)
                return service, first, second

        service, first, second = _run(scenario())
        assert first.source == "solver" and second.source == "cache"
        assert service.stats.cache_hits == 1
        assert service.stats.solver_jobs == 1
        # The cached answer matches the solved one field for field.
        assert second.payload == first.payload

    def test_in_memory_store_object_is_shared(self):
        request = JobRequest(kind="pebble", workload="c17", budget=4,
                             time_limit=30)

        async def scenario():
            with ResultStore(":memory:") as store:
                async with PebblingService(store=store, batch_window=0.0) as service:
                    first = await service.submit(request)
                    second = await service.submit(request)
                    return first.source, second.source

        assert _run(scenario()) == ("solver", "cache")

    def test_sweep_expands_dedups_and_aggregates(self, tmp_path):
        db = str(tmp_path / "cache.db")
        sweep = JobRequest(kind="sweep", workload="fig2", min_budget=3,
                           max_budget=6, time_limit=30)

        async def scenario():
            async with PebblingService(store=db, batch_window=0.05) as service:
                overlapping = JobRequest(kind="pebble", workload="fig2",
                                         budget=4, time_limit=30)
                sweep_result, single = await asyncio.gather(
                    service.submit(sweep), service.submit(overlapping)
                )
                return service, sweep_result, single

        service, sweep_result, single = _run(scenario())
        assert sweep_result.ok and sweep_result.source == "aggregate"
        payload = sweep_result.payload
        assert payload["minimum_feasible_budget"] == 4
        assert [p["request"]["budget"] for p in payload["points"]] == [3, 4, 5, 6]
        assert single.ok
        assert service.stats.expanded == 4
        # The overlapping single request shared work with the sweep, one
        # way or the other (dedup if concurrent, cache if sequenced).
        assert service.stats.deduplicated + service.stats.cache_hits >= 1

    def test_compile_requests_and_cache(self, tmp_path):
        db = str(tmp_path / "cache.db")
        request = JobRequest(kind="compile", workload="fig2", budget=4,
                             decompose=True, time_limit=30)

        async def scenario():
            async with PebblingService(store=db, batch_window=0.0) as service:
                first = await service.submit(request)
                second = await service.submit(request)
                return first, second

        first, second = _run(scenario())
        assert first.ok and first.source == "solver"
        assert first.payload["verified"] is True
        assert second.source == "cache"
        assert second.payload == first.payload

    def test_errors_are_contained_results(self):
        async def scenario():
            async with PebblingService(batch_window=0.0) as service:
                bad, good = await service.run([
                    JobRequest(kind="pebble", workload="no-such", budget=4),
                    JobRequest(kind="pebble", workload="fig2", budget=4,
                               time_limit=30),
                ])
                return service, bad, good

        service, bad, good = _run(scenario())
        assert bad.status == "error" and "no-such" in bad.error
        assert good.ok
        assert service.stats.errors == 1

    def test_sweep_with_failing_children_reports_error(self):
        async def scenario():
            async with PebblingService(batch_window=0.0) as service:
                return await service.submit(
                    JobRequest(kind="sweep", workload="missing_dag.json",
                               min_budget=3, max_budget=4)
                )

        result = _run(scenario())
        assert result.status == "error"
        assert "2 of 2 budget searches failed" in result.error
        assert all(
            "does not exist" in point["error"]
            for point in result.payload["points"]
        )

    def test_sweep_with_erroring_budget_points_reports_error(self, monkeypatch):
        # Bounds resolve fine, but every per-budget child crashes: the
        # aggregate must not read as "ok" (mirrors pebble-batch's exit 1).
        import repro.service.scheduler as scheduler_module

        def _boom(task, store=None):
            raise RuntimeError("worker crashed")

        monkeypatch.setattr(scheduler_module, "run_portfolio",
                            lambda tasks, **kwargs: [_boom(t) for t in tasks])

        async def scenario():
            async with PebblingService(batch_window=0.0) as service:
                return await service.submit(
                    JobRequest(kind="sweep", workload="fig2", min_budget=3,
                               max_budget=4, time_limit=10)
                )

        result = _run(scenario())
        assert result.status == "error"
        assert "2 of 2 budget searches failed" in result.error

    def test_close_fails_pending_futures(self):
        async def scenario():
            service = PebblingService(batch_window=0.0)
            pending = asyncio.create_task(service.submit(
                JobRequest(kind="pebble", workload="and9", budget=4,
                           time_limit=5)  # an UNSAT sweep: ~1 s of work
            ))
            await asyncio.sleep(0)  # let the request enqueue
            await service.close()
            with pytest.raises(ServiceError, match="closed with requests pending"):
                await pending

        _run(scenario())

    def test_submit_after_close_raises(self):
        async def scenario():
            service = PebblingService()
            await service.close()
            with pytest.raises(ServiceError):
                await service.submit(
                    JobRequest(kind="pebble", workload="fig2", budget=4)
                )

        _run(scenario())


class TestRequestFile:
    def test_parse_rejects_malformed_files(self, tmp_path):
        path = tmp_path / "requests.json"
        path.write_text('{"nope": []}')
        with pytest.raises(ServiceError, match="requests"):
            parse_request_file(path)
        path.write_text('"just a string"')
        with pytest.raises(ServiceError, match="object or list"):
            parse_request_file(path)
        path.write_text('{"requests": [5]}')
        with pytest.raises(ServiceError, match="JSON object"):
            parse_request_file(path)
        path.write_text("{not json")
        with pytest.raises(ServiceError, match="not valid JSON"):
            parse_request_file(path)
        with pytest.raises(ServiceError, match="cannot read"):
            parse_request_file(path.parent / "absent.json")

    def test_end_to_end_report(self, tmp_path):
        db = str(tmp_path / "cache.db")
        path = tmp_path / "requests.json"
        path.write_text(json.dumps({
            "requests": [
                {"kind": "pebble", "workload": "fig2", "budget": 4,
                 "time_limit": 30},
                {"kind": "pebble", "workload": "fig2", "budget": 4,
                 "time_limit": 30},
                {"kind": "pebble", "workload": "c17", "budget": 4,
                 "time_limit": 30},
            ]
        }))
        report = run_request_file(path, store=db, workers=2, batch_window=0.05)
        assert [r["status"] for r in report["results"]] == ["ok"] * 3
        assert report["stats"]["deduplicated"] == 1
        assert report["store"]["entries"] >= 2
        # A second run of the same file is answered entirely from cache.
        again = run_request_file(path, store=db, workers=2, batch_window=0.05)
        assert again["stats"]["cache_hits"] >= 1
        assert again["stats"]["solver_jobs"] == 0


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])


class TestBackendRequests:
    def test_backend_is_part_of_request_identity(self):
        base = JobRequest(kind="pebble", workload="fig2", budget=4)
        dpll = JobRequest(kind="pebble", workload="fig2", budget=4, backend="dpll")
        assert base != dpll

    def test_invalid_backend_rejected(self):
        with pytest.raises(ServiceError, match="backend"):
            JobRequest(kind="pebble", workload="fig2", budget=4, backend="").validate()

    def test_request_backend_reaches_the_solver(self):
        async def scenario():
            async with PebblingService(batch_window=0.0) as service:
                result = await service.submit(
                    JobRequest(
                        kind="pebble", workload="fig2", budget=4,
                        backend="dpll", time_limit=30,
                    )
                )
                return result

        result = _run(scenario())
        assert result.ok
        assert result.payload["backend"] == "dpll"
        assert result.payload["steps"] == 6

    def test_unknown_backend_is_error_result_not_exception(self):
        async def scenario():
            async with PebblingService(batch_window=0.0) as service:
                return await service.submit(
                    JobRequest(
                        kind="pebble", workload="fig2", budget=4, backend="bogus"
                    )
                )

        result = _run(scenario())
        assert result.status == "error"
        assert "registered backends" in result.error

    def test_cache_transfers_across_backends(self):
        async def scenario():
            async with PebblingService(
                store=ResultStore(":memory:"), batch_window=0.0
            ) as service:
                first = await service.submit(
                    JobRequest(kind="pebble", workload="fig2", budget=4,
                               backend="dpll", time_limit=30)
                )
                second = await service.submit(
                    JobRequest(kind="pebble", workload="fig2", budget=4,
                               backend="cdcl", time_limit=30)
                )
                return first, second, service.stats.cache_hits

        first, second, cache_hits = _run(scenario())
        assert first.source == "solver"
        # Identical request modulo backend: the content address matches, so
        # the second answer comes from the cache and names its producer.
        assert cache_hits == 1 and second.source == "cache"
        assert second.payload["backend"] == "dpll"

    def test_request_file_default_backend(self, tmp_path):
        path = tmp_path / "requests.json"
        path.write_text(json.dumps({
            "requests": [
                {"kind": "pebble", "workload": "fig2", "budget": 4,
                 "time_limit": 30},
                {"kind": "pebble", "workload": "fig2", "budget": 4,
                 "backend": "cdcl", "time_limit": 30},
            ]
        }))
        requests = parse_request_file(path, default_backend="dpll")
        assert requests[0].backend == "dpll"  # filled in
        assert requests[1].backend == "cdcl"  # explicit wins
        report = run_request_file(path, default_backend="dpll")
        assert [r["status"] for r in report["results"]] == ["ok", "ok"]
        assert report["results"][0]["payload"]["backend"] == "dpll"
