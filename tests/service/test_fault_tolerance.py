"""Tests for the service's fault-tolerance surface.

Covers admission control (bounded queue, load shedding, dedup immunity),
graceful deadline preemption into anytime partial answers, the structured
health snapshot, retry threading into solver jobs, and the lenient
request-file runner (malformed entries become positional error records
while well-formed siblings still run).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.pebbling.portfolio import RetryPolicy
from repro.service import (
    JobRequest,
    PebblingService,
    ServiceError,
    ServiceOverloadError,
    parse_request_file,
    run_request_file,
)


def _pebble(budget: int = 4, **overrides) -> JobRequest:
    parameters = dict(kind="pebble", workload="fig2", budget=budget)
    parameters.update(overrides)
    return JobRequest(**parameters)


def _drive(coroutine):
    return asyncio.run(coroutine)


class TestAdmissionControl:
    def test_max_queue_must_be_positive(self):
        with pytest.raises(ServiceError, match="max_queue"):
            PebblingService(max_queue=0)

    def test_overload_sheds_excess_submissions(self):
        async def scenario():
            async with PebblingService(max_queue=2, batch_window=0.0) as service:
                requests = [_pebble(budget) for budget in (4, 5, 6, 7)]
                results = await service.run(requests)
                return results, service.stats

        results, stats = _drive(scenario())
        shed = [result for result in results if result.source == "shed"]
        served = [result for result in results if result.source != "shed"]
        assert len(shed) == 2 and len(served) == 2
        assert all(result.status == "error" for result in shed)
        assert all("shed" in result.error for result in shed)
        assert all(result.ok for result in served)
        assert stats.sheds == 2

    def test_submit_raises_overload_directly(self):
        async def scenario():
            async with PebblingService(max_queue=1, batch_window=0.0) as service:
                first = asyncio.ensure_future(service.submit(_pebble(4)))
                await asyncio.sleep(0)  # let the first submission enqueue
                with pytest.raises(ServiceOverloadError):
                    await service.submit(_pebble(5))
                return await first

        result = _drive(scenario())
        assert result.ok

    def test_deduplicated_requests_are_never_shed(self):
        async def scenario():
            async with PebblingService(max_queue=1, batch_window=0.05) as service:
                # Four copies of one request: one occupies the whole queue,
                # the rest piggyback on it instead of being shed.
                results = await service.run([_pebble(4)] * 4)
                return results, service.stats

        results, stats = _drive(scenario())
        assert all(result.ok for result in results)
        assert stats.sheds == 0
        assert stats.deduplicated == 3


class TestDeadlines:
    def test_deadline_must_be_positive(self):
        with pytest.raises(ServiceError, match="deadline"):
            _pebble(deadline=0.0).validate()

    def test_preempted_request_returns_anytime_partial(self):
        async def scenario():
            async with PebblingService(batch_window=0.0) as service:
                # ~1 s of all-UNSAT sweep against a 0.2 s deadline.
                request = JobRequest(
                    kind="pebble", workload="and9", budget=4, single_move=True,
                    time_limit=60.0, deadline=0.2,
                )
                result = await service.submit(request)
                return result, service.stats

        result, stats = _drive(scenario())
        assert result.ok  # degraded, not failed
        payload = result.payload
        assert payload["complete"] is False
        assert payload["partial"]
        checkpoint = payload["partial"]["checkpoint"]
        assert checkpoint["next_bound"] >= 1
        assert stats.preempted == 1
        assert stats.partial_answers == 1

    def test_fast_request_beats_its_deadline_untouched(self):
        async def scenario():
            async with PebblingService(batch_window=0.0) as service:
                result = await service.submit(_pebble(4, deadline=30.0))
                return result, service.stats

        result, stats = _drive(scenario())
        assert result.ok
        assert result.payload["complete"] is True
        assert result.payload["steps"] == 6
        assert stats.preempted == 0


class TestHealthAndRetries:
    def test_health_snapshot_shape(self):
        async def scenario():
            async with PebblingService(max_queue=9, workers=2) as service:
                await service.submit(_pebble(4))
                return service.health()

        health = _drive(scenario())
        assert set(health) == {
            "queue_depth", "in_flight", "workers", "max_queue",
            "stats", "metrics",
        }
        assert health["queue_depth"] == 0
        assert health["in_flight"] == 0
        assert health["workers"] == 2
        assert health["max_queue"] == 9
        assert health["stats"]["completed"] == 1

    def test_retry_policy_heals_chaos_faults_in_solver_jobs(self):
        async def scenario():
            retry = RetryPolicy(max_attempts=3, base_delay=0.0)
            async with PebblingService(batch_window=0.0, retry=retry) as service:
                result = await service.submit(
                    _pebble(4, backend="chaos:3,flaky=1")
                )
                return result, service.health()

        result, health = _drive(scenario())
        assert result.ok
        assert result.payload["steps"] == 6
        assert result.payload["retries"] == 1
        assert health["stats"]["retries"] >= 1


class TestRequestFileLeniency:
    GOOD = {"kind": "pebble", "workload": "fig2", "budget": 4}
    BAD_FIELD = {"kind": "pebble", "workload": "fig2", "nonsense": 1}
    BAD_SHAPE = "just a string"

    def _write(self, tmp_path, entries) -> str:
        path = tmp_path / "requests.json"
        path.write_text(json.dumps({"requests": entries}), encoding="utf-8")
        return str(path)

    def test_malformed_entries_become_positional_error_records(self, tmp_path):
        path = self._write(
            tmp_path, [self.BAD_FIELD, self.GOOD, self.BAD_SHAPE]
        )
        report = run_request_file(path, batch_window=0.0)
        results = report["results"]
        assert len(results) == 3
        assert results[0]["source"] == "request-file"
        assert "nonsense" in results[0]["error"]
        assert results[0]["request"]["nonsense"] == 1  # raw entry preserved
        assert results[1]["status"] == "ok"
        assert results[1]["payload"]["steps"] == 6
        assert results[2]["source"] == "request-file"
        assert "JSON object" in results[2]["error"]

    def test_parse_request_file_stays_strict(self, tmp_path):
        path = self._write(tmp_path, [self.GOOD, self.BAD_FIELD])
        with pytest.raises(ServiceError, match="nonsense"):
            parse_request_file(path)

    def test_file_level_problems_still_raise(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ServiceError, match="not valid JSON"):
            run_request_file(str(path))

    def test_report_carries_health_and_default_deadline(self, tmp_path):
        path = self._write(tmp_path, [self.GOOD])
        report = run_request_file(path, batch_window=0.0, deadline=30.0)
        assert report["results"][0]["request"]["deadline"] == 30.0
        assert report["health"]["stats"]["completed"] == 1

    def test_explicit_deadline_wins_over_default(self, tmp_path):
        entry = dict(self.GOOD, deadline=15.0)
        path = self._write(tmp_path, [entry])
        report = run_request_file(path, batch_window=0.0, deadline=30.0)
        assert report["results"][0]["request"]["deadline"] == 15.0
