#!/usr/bin/env python3
"""Minisat-style DIMACS solver stub for the external-backend tests and CI.

Usage: ``python tests/external_stub_solver.py <input.cnf> [<output>]``

Reads a DIMACS CNF, solves it with the repository's own CDCL engine, and
answers in *both* conventions the external backend must parse:

* with an output path (minisat convention): the file gets ``SAT`` plus a
  model line (or ``UNSAT``), and stdout stays quiet;
* without one (SAT-competition convention): stdout gets ``s SATISFIABLE``
  plus ``v ...`` model lines (or ``s UNSATISFIABLE``).

Exit code follows the solver convention: 10 for SAT, 20 for UNSAT.

Setting ``STUB_SOLVER_STDOUT=1`` forces the stdout convention even when an
output path is given, so tests can exercise the backend's fallback parse.
"""

import os
import shlex
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sat.dimacs import parse_dimacs  # noqa: E402
from repro.sat.solver import CdclSolver  # noqa: E402


def stub_command() -> str:
    """The shell command that runs this stub (quoted: paths may have spaces)."""
    return f"{shlex.quote(sys.executable)} {shlex.quote(__file__)}"


def stub_backend_spec() -> str:
    """The ``external:`` backend spec driving this stub — the single source
    shared by every test suite (the benchmark harness builds its own from
    the same quoting rule, since it cannot import the tests package)."""
    return f"external:{stub_command()}"


def main(argv: "list[str]") -> int:
    if len(argv) < 1:
        print("usage: external_stub_solver.py <input.cnf> [<output>]", file=sys.stderr)
        return 1
    cnf = parse_dimacs(Path(argv[0]))
    result = CdclSolver(cnf).solve()
    use_stdout = len(argv) < 2 or os.environ.get("STUB_SOLVER_STDOUT") == "1"
    if result.is_sat:
        assert result.model is not None
        literals = [
            variable if value else -variable
            for variable, value in sorted(result.model.items())
        ]
        if use_stdout:
            print("s SATISFIABLE")
            print("v " + " ".join(map(str, literals)) + " 0")
        else:
            Path(argv[1]).write_text(
                "SAT\n" + " ".join(map(str, literals)) + " 0\n", encoding="utf-8"
            )
        return 10
    if use_stdout:
        print("s UNSATISFIABLE")
    else:
        Path(argv[1]).write_text("UNSAT\n", encoding="utf-8")
    return 20


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
