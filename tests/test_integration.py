"""End-to-end integration tests reproducing the paper's headline scenarios.

Each test exercises the full pipeline (workload construction, baseline,
SAT-based pebbling, compilation, simulation) the way the corresponding
section of the paper does, with scaled-down sizes where the original
experiment is too large for a pure-Python SAT solver in a unit test.
"""

import pytest

from repro.circuits import barenco_and_oracle, circuit_cost, compile_network_oracle
from repro.circuits.simulator import verify_oracle_circuit
from repro.pebbling import (
    EncodingOptions,
    ReversiblePebblingSolver,
    bennett_strategy,
    eager_bennett_strategy,
    pebble_dag,
)
from repro.slp import kummer_point_addition_slp
from repro.visualize import render_strategy_grid
from repro.workloads import load_workload
from repro.workloads.registry import and_tree_network


class TestSection2Example:
    """Fig. 2 / Fig. 3 / Fig. 4: the six-node example."""

    def test_bennett_versus_constrained_strategies(self, fig2_dag):
        bennett = bennett_strategy(fig2_dag)
        assert (bennett.max_pebbles, bennett.num_moves) == (6, 10)

        # Fig. 3(b): reordering alone can save a qubit without extra gates.
        reordered = eager_bennett_strategy(fig2_dag)
        assert reordered.num_moves == 10

        # Fig. 3(c)/Fig. 4 (right): with only 4 pebbles some values must be
        # recomputed, increasing the number of gates.
        constrained = pebble_dag(fig2_dag, 4, time_limit=60)
        assert constrained.found
        assert constrained.strategy.max_pebbles <= 4
        assert constrained.num_moves > bennett.num_moves

    def test_grid_rendering_matches_fig4_shape(self, fig2_dag):
        strategy = bennett_strategy(fig2_dag)
        grid = render_strategy_grid(strategy, show_header=False)
        rows = [line for line in grid.splitlines()[:-2]]
        assert len(rows) == 6
        assert all(len(row.split()[1]) == 11 for row in rows)


class TestSection4aStraightLinePrograms:
    """Fig. 5: pebbling a cryptographic straight-line program with
    decreasing ancilla budgets."""

    def test_pebble_budget_sweep_on_the_kummer_program(self):
        """The Fig. 5 experiment shape on the Kummer point addition: a
        constrained budget still admits a strategy, at the price of more
        executed operations than the Bennett minimum."""
        dag = kummer_point_addition_slp().to_dag()
        baseline = eager_bennett_strategy(dag)
        result = pebble_dag(dag, 24, time_limit=120, step_schedule="geometric")
        assert result.found
        cleaned = result.strategy.remove_redundant_moves()
        assert cleaned.max_pebbles <= 24 < baseline.max_pebbles
        assert cleaned.num_moves >= baseline.num_moves

    def test_fine_grained_sweep_on_the_edwards_program(self):
        """A finer budget sweep on the smaller Edwards addition program: the
        move count never drops below the Bennett minimum and the budget is
        always respected."""
        dag = load_workload("edwards-add")
        baseline = eager_bennett_strategy(dag)
        for budget in (baseline.max_pebbles, baseline.max_pebbles - 3,
                       baseline.max_pebbles - 5):
            result = pebble_dag(dag, budget, time_limit=60)
            assert result.found, budget
            cleaned = result.strategy.remove_redundant_moves()
            assert cleaned.max_pebbles <= budget
            assert cleaned.num_moves >= baseline.num_moves

    def test_operation_counts_reported_per_type(self):
        dag = load_workload("edwards-add")
        result = pebble_dag(dag, 14, time_limit=60)
        assert result.found
        counts = result.strategy.operation_counts()
        assert set(counts) <= {"add", "sub", "mul", "sqr", "cmul"}
        assert sum(counts.values()) == result.num_moves


class TestSection4bBennettComparison:
    """Table I (scaled down): Bennett vs SAT pebbling on gate-level DAGs."""

    @pytest.mark.parametrize("workload,scale", [("c17", 1.0), ("c432", 0.08)])
    def test_pebble_reduction_on_iscas_like_circuits(self, workload, scale):
        dag = load_workload(workload, scale=scale)
        baseline = eager_bennett_strategy(dag)
        solver = ReversiblePebblingSolver(dag)
        best, _ = solver.minimize_pebbles(
            timeout_per_budget=15, stop_after_failures=1
        )
        assert best is not None
        assert best.strategy.max_pebbles <= baseline.max_pebbles
        assert best.num_moves >= baseline.num_moves

    def test_hadamard_gate_level_comparison(self):
        dag = load_workload("b2_m3", scale=0.5)   # 1-bit variant of the H operator
        baseline = eager_bennett_strategy(dag)
        result = pebble_dag(
            dag, max(3, baseline.max_pebbles - 2), time_limit=90, step_schedule="geometric"
        )
        assert result.found
        assert result.strategy.max_pebbles < baseline.max_pebbles


class TestSection4cHardwareConstraints:
    """Fig. 6: mapping a 9-input AND oracle onto a 16-qubit device."""

    def test_three_way_comparison(self):
        network = and_tree_network(9)
        dag = network.to_dag()

        bennett = compile_network_oracle(network)
        assert bennett.num_qubits == 17           # does not fit on 16 qubits
        assert bennett.num_gates == 15

        barenco = barenco_and_oracle(9)
        assert barenco.num_qubits == 11
        assert barenco.num_gates == 48

        pebbled_result = pebble_dag(dag, 7, time_limit=120)
        assert pebbled_result.found
        pebbled = compile_network_oracle(network, pebbled_result.strategy)
        assert pebbled.num_qubits <= 16           # fits the ibmqx5-style budget
        assert pebbled.num_gates <= 23            # the paper reports 23 gates

        # The pebbled circuit is the balanced option: fewer gates than
        # Barenco, fewer qubits than Bennett.
        assert pebbled.num_gates < barenco.num_gates
        assert pebbled.num_qubits < bennett.num_qubits

        # All three circuits must implement the same oracle.
        output = network.outputs[0]
        for compiled in (bennett, pebbled):
            verify_oracle_circuit(
                compiled.circuit,
                network,
                input_map={name: compiled.input_qubits[name] for name in network.inputs},
                output_map={output: compiled.output_qubits[output]},
            )
        verify_oracle_circuit(
            barenco,
            lambda values: {"h": all(values[f"x{i}"] for i in range(9))},
            input_map={f"x{i}": f"x{i}" for i in range(9)},
            output_map={"h": "h"},
        )

    def test_cost_model_ranks_the_alternatives(self):
        network = and_tree_network(9)
        dag = network.to_dag()
        pebbled_result = pebble_dag(dag, 7, time_limit=120)
        bennett_cost = circuit_cost(compile_network_oracle(network).circuit)
        pebbled_cost = circuit_cost(
            compile_network_oracle(network, pebbled_result.strategy).circuit
        )
        barenco_cost = circuit_cost(barenco_and_oracle(9))
        assert bennett_cost.gates < pebbled_cost.gates < barenco_cost.gates
        assert barenco_cost.qubits < pebbled_cost.qubits < bennett_cost.qubits


class TestSingleMoveSemantics:
    """The encoding option reproducing the paper's one-move-per-step grids."""

    def test_single_move_strategies_are_single_move(self, fig2_dag):
        options = EncodingOptions(max_moves_per_step=1)
        result = pebble_dag(fig2_dag, 5, options=options, time_limit=60)
        assert result.found
        for index in range(result.strategy.num_steps):
            before = result.strategy.configurations[index]
            after = result.strategy.configurations[index + 1]
            assert len(before.symmetric_difference(after)) == 1
