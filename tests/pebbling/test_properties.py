"""Property-based tests on the pebbling engines.

Hypothesis generates random DAGs; every engine (Bennett, eager Bennett,
greedy heuristic, SAT solver) must return strategies that the
:class:`~repro.pebbling.strategy.PebblingStrategy` validator accepts, and
the engines must respect their documented invariants relative to each
other.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.dag.generators import layered_random_dag
from repro.pebbling import (
    bennett_strategy,
    eager_bennett_strategy,
    greedy_pebbling_strategy,
    pebble_dag,
)


@st.composite
def small_dags(draw):
    """Random layered DAGs small enough for the SAT engine."""
    num_nodes = draw(st.integers(min_value=2, max_value=14))
    num_outputs = draw(st.integers(min_value=1, max_value=max(1, num_nodes // 3)))
    depth = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return layered_random_dag(num_nodes, num_outputs, depth=depth, seed=seed)


@st.composite
def medium_dags(draw):
    """Random DAGs for the polynomial-time engines only."""
    num_nodes = draw(st.integers(min_value=2, max_value=60))
    num_outputs = draw(st.integers(min_value=1, max_value=max(1, num_nodes // 4)))
    depth = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return layered_random_dag(num_nodes, num_outputs, depth=depth, seed=seed)


@given(medium_dags())
@settings(max_examples=60, deadline=None)
def test_bennett_invariants(dag):
    strategy = bennett_strategy(dag)
    assert strategy.max_pebbles == dag.num_nodes
    assert strategy.num_moves == 2 * dag.num_nodes - len(dag.outputs())
    assert all(count == 1 for count in strategy.compute_counts().values())


@given(medium_dags())
@settings(max_examples=60, deadline=None)
def test_eager_bennett_dominates_bennett_on_space(dag):
    plain = bennett_strategy(dag)
    eager = eager_bennett_strategy(dag)
    assert eager.num_moves == plain.num_moves
    assert eager.max_pebbles <= plain.max_pebbles
    assert eager.configurations[-1] == frozenset(dag.outputs())


@given(medium_dags())
@settings(max_examples=40, deadline=None)
def test_greedy_heuristics_always_produce_valid_strategies(dag):
    # Construction validates legality; additionally the final configuration
    # must be exactly the outputs and the pebble budget must never be beaten
    # by the trivial lower bound.
    for mode in ("recursive", "cone"):
        strategy = greedy_pebbling_strategy(dag, mode=mode, max_moves=200_000)
        assert strategy.configurations[-1] == frozenset(dag.outputs())
        assert strategy.max_pebbles >= 1


@given(small_dags(), st.integers(min_value=0, max_value=3))
@settings(max_examples=25, deadline=None)
def test_sat_solver_respects_budget_and_validity(dag, slack):
    """The SAT engine must stay within the requested pebble budget and emit
    legal strategies (legality is enforced by the strategy constructor)."""
    budget = min(dag.num_nodes, eager_bennett_strategy(dag).max_pebbles) + slack
    result = pebble_dag(dag, budget, time_limit=20)
    assert result.found, (dag.name, budget, result.outcome)
    assert result.strategy.max_pebbles <= budget
    assert result.strategy.configurations[-1] == frozenset(dag.outputs())


@given(small_dags())
@settings(max_examples=15, deadline=None)
def test_sat_solver_never_beats_the_bennett_move_lower_bound(dag):
    """No valid strategy can use fewer moves than 2|V| - |O|: every node
    feeds some output, so it is pebbled at least once, and every non-output
    node must additionally be unpebbled before the game ends.  Bennett's
    strategy meets the bound, the SAT solutions may only match or exceed it."""
    budget = dag.num_nodes
    result = pebble_dag(dag, budget, time_limit=20)
    assert result.found
    lower_bound = 2 * dag.num_nodes - len(dag.outputs())
    assert result.num_moves >= lower_bound
    assert bennett_strategy(dag).num_moves == lower_bound


@given(small_dags())
@settings(max_examples=15, deadline=None)
def test_all_engines_agree_on_minimal_step_counts(dag):
    """Monolithic and incremental searches share one frame-based encoding.

    With the linear schedule both engines certify the same minimal step
    count, and geometric-refine — despite probing a different bound
    sequence — must land on that exact minimum too.  Every returned
    strategy passes the legality validator (enforced by construction).
    (Portfolio-vs-inline parity runs on the named workloads in
    ``test_portfolio.py``, since worker processes rebuild DAGs by name.)
    """
    from repro.pebbling import PebblingStrategy, ReversiblePebblingSolver

    budget = eager_bennett_strategy(dag).max_pebbles
    incremental = ReversiblePebblingSolver(dag, incremental=True).solve(
        budget, time_limit=20
    )
    monolithic = ReversiblePebblingSolver(dag, incremental=False).solve(
        budget, time_limit=20
    )
    refine = ReversiblePebblingSolver(dag, incremental=True).solve(
        budget, time_limit=20, strategy="geometric-refine"
    )
    assert incremental.found and monolithic.found and refine.found
    assert incremental.num_steps == monolithic.num_steps == refine.num_steps
    for result in (incremental, monolithic, refine):
        # Re-validating through the constructor exercises the legality rules.
        PebblingStrategy(dag, list(result.strategy.configurations))
