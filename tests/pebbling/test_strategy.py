"""Unit tests for pebbling configurations, moves and strategies."""

import pytest

from repro.errors import InvalidStrategyError
from repro.pebbling import PebbleMove, PebblingStrategy, bennett_strategy


def _bennett_configs_fig2():
    """The paper's first Fig. 4 strategy (Bennett) as explicit configurations."""
    return [
        set(),
        {"A"},
        {"A", "B"},
        {"A", "B", "C"},
        {"A", "B", "C", "D"},
        {"A", "B", "C", "D", "E"},
        {"A", "B", "C", "D", "E", "F"},
        {"A", "B", "C", "E", "F"},
        {"A", "B", "E", "F"},
        {"A", "E", "F"},
        {"E", "F"},
    ]


def _four_pebble_configs_fig2():
    """The paper's second Fig. 4 strategy (4 pebbles, 14 steps)."""
    return [
        set(),
        {"A"},
        {"A", "C"},
        {"C"},
        {"B", "C"},
        {"B", "C", "D"},
        {"C", "D"},
        {"C", "D", "E"},
        {"A", "C", "D", "E"},
        {"A", "D", "E"},
        {"A", "D", "E", "F"},
        {"D", "E", "F"},
        {"B", "D", "E", "F"},
        {"B", "E", "F"},
        {"E", "F"},
    ]


class TestValidation:
    def test_bennett_example_from_paper_is_valid(self, fig2_dag):
        strategy = PebblingStrategy(fig2_dag, _bennett_configs_fig2())
        assert strategy.num_steps == 10
        assert strategy.max_pebbles == 6

    def test_four_pebble_example_from_paper_is_valid(self, fig2_dag):
        strategy = PebblingStrategy(fig2_dag, _four_pebble_configs_fig2())
        assert strategy.num_steps == 14
        assert strategy.max_pebbles == 4

    def test_initial_configuration_must_be_empty(self, fig2_dag):
        configs = _bennett_configs_fig2()
        configs[0] = {"A"}
        with pytest.raises(InvalidStrategyError):
            PebblingStrategy(fig2_dag, configs)

    def test_final_configuration_must_be_exactly_the_outputs(self, fig2_dag):
        configs = _bennett_configs_fig2()
        configs[-1] = {"E"}
        with pytest.raises(InvalidStrategyError):
            PebblingStrategy(fig2_dag, configs)
        configs[-1] = {"E", "F", "A"}
        with pytest.raises(InvalidStrategyError):
            PebblingStrategy(fig2_dag, configs)

    def test_pebbling_without_dependencies_rejected(self, fig2_dag):
        # E cannot be pebbled while D is missing.
        configs = [set(), {"A"}, {"A", "C"}, {"A", "C", "E"}]
        with pytest.raises(InvalidStrategyError):
            PebblingStrategy(fig2_dag, configs)

    def test_unpebbling_without_dependencies_rejected(self, fig2_dag):
        # Removing C after A has been removed is illegal.
        configs = _bennett_configs_fig2()
        # Build an explicitly bad tail: remove A before removing C.
        bad = [
            set(),
            {"A"},
            {"A", "B"},
            {"A", "B", "C"},
            {"A", "B", "C", "D"},
            {"A", "B", "C", "D", "E"},
            {"A", "B", "C", "D", "E", "F"},
            {"B", "C", "D", "E", "F"},   # remove A (legal, A has no deps)
            {"B", "D", "E", "F"},        # remove C without A: illegal
        ]
        with pytest.raises(InvalidStrategyError):
            PebblingStrategy(fig2_dag, bad)
        assert configs  # silence unused warning

    def test_unknown_node_rejected(self, fig2_dag):
        with pytest.raises(InvalidStrategyError):
            PebblingStrategy(fig2_dag, [set(), {"Z"}])

    def test_empty_strategy_rejected(self, fig2_dag):
        with pytest.raises(InvalidStrategyError):
            PebblingStrategy(fig2_dag, [])

    def test_max_moves_per_step_enforced(self, fig2_dag):
        configs = [set(), {"A", "B"}]
        # Two moves in one transition is fine without a limit...
        with pytest.raises(InvalidStrategyError):
            # ...but the final configuration is wrong here, so use a valid
            # multi-move strategy below instead.
            PebblingStrategy(fig2_dag, configs)

    def test_single_move_limit_rejects_parallel_moves(self, fig2_dag):
        configs = [
            set(), {"A", "B"}, {"A", "B", "C", "D"}, {"A", "B", "C", "D", "E"},
            {"A", "B", "C", "D", "E", "F"}, {"A", "B", "E", "F"}, {"E", "F"},
        ]
        PebblingStrategy(fig2_dag, configs)  # unrestricted: fine
        with pytest.raises(InvalidStrategyError):
            PebblingStrategy(fig2_dag, configs, max_moves_per_step=1)


class TestMetricsAndConversion:
    def test_moves_and_steps_counts(self, fig2_dag):
        strategy = PebblingStrategy(fig2_dag, _four_pebble_configs_fig2())
        assert strategy.num_moves == 14
        assert strategy.num_steps == 14
        assert len(strategy.moves()) == 14

    def test_pebble_profile(self, fig2_dag):
        strategy = PebblingStrategy(fig2_dag, _bennett_configs_fig2())
        profile = strategy.pebble_profile()
        assert profile[0] == 0
        assert max(profile) == 6
        assert profile[-1] == 2

    def test_compute_counts_capture_recomputation(self, fig2_dag):
        strategy = PebblingStrategy(fig2_dag, _four_pebble_configs_fig2())
        counts = strategy.compute_counts()
        assert counts["A"] == 2     # A is computed twice in the paper's example
        assert counts["B"] == 2
        assert counts["E"] == 1

    def test_operation_counts_count_moves(self, fig2_dag):
        strategy = PebblingStrategy(fig2_dag, _bennett_configs_fig2())
        counts = strategy.operation_counts()
        # Every non-output node is computed and uncomputed; outputs only computed.
        assert counts == {"A": 2, "B": 2, "C": 2, "D": 2, "E": 1, "F": 1}

    def test_weighted_cost(self, fig2_dag):
        fig2_dag.node("A").weight = 10.0
        strategy = PebblingStrategy(fig2_dag, _bennett_configs_fig2())
        assert strategy.weighted_cost() == 8 * 1.0 + 2 * 10.0

    def test_from_moves_round_trip(self, fig2_dag):
        strategy = PebblingStrategy(fig2_dag, _four_pebble_configs_fig2())
        rebuilt = PebblingStrategy.from_moves(fig2_dag, strategy.moves())
        assert rebuilt.configurations[-1] == strategy.configurations[-1]
        assert rebuilt.num_moves == strategy.num_moves

    def test_from_moves_rejects_double_pebble(self, fig2_dag):
        with pytest.raises(InvalidStrategyError):
            PebblingStrategy.from_moves(
                fig2_dag, [PebbleMove("A", True), PebbleMove("A", True)]
            )

    def test_from_moves_rejects_unpebbling_unpebbled(self, fig2_dag):
        with pytest.raises(InvalidStrategyError):
            PebblingStrategy.from_moves(fig2_dag, [PebbleMove("A", False)])

    def test_as_single_move_strategy(self, fig2_dag):
        configs = [
            set(), {"A", "B"}, {"A", "B", "C", "D"}, {"A", "B", "C", "D", "E"},
            {"A", "B", "C", "D", "E", "F"}, {"A", "B", "E", "F"}, {"E", "F"},
        ]
        multi = PebblingStrategy(fig2_dag, configs)
        single = multi.as_single_move_strategy()
        assert single.num_steps == multi.num_moves
        assert single.max_pebbles <= multi.max_pebbles

    def test_stuttering_configurations_are_compressed(self, fig2_dag):
        configs = _bennett_configs_fig2()
        configs.insert(3, configs[3])  # duplicate a configuration
        strategy = PebblingStrategy(fig2_dag, configs)
        assert strategy.num_steps == 10

    def test_remove_redundant_moves_drops_useless_pairs(self, fig2_dag):
        # Pebble B early, never use it, remove it again: a useless pair.
        configs = [
            set(), {"A"}, {"A", "B"}, {"A"}, {"A", "C"}, {"A", "C", "B"},
            {"A", "C", "B", "D"}, {"A", "C", "B", "D", "E"},
            {"A", "C", "B", "D", "E", "F"}, {"A", "B", "D", "E", "F"},
            {"A", "B", "E", "F"}, {"A", "E", "F"}, {"E", "F"},
        ]
        strategy = PebblingStrategy(fig2_dag, configs)
        cleaned = strategy.remove_redundant_moves()
        assert cleaned.num_moves == strategy.num_moves - 2
        assert cleaned.compute_counts()["B"] == 1
        assert cleaned.max_pebbles <= strategy.max_pebbles

    def test_remove_redundant_moves_keeps_minimal_strategies(self, fig2_dag):
        strategy = PebblingStrategy(fig2_dag, _bennett_configs_fig2())
        cleaned = strategy.remove_redundant_moves()
        assert cleaned.num_moves == strategy.num_moves
        assert cleaned.max_pebbles == strategy.max_pebbles

    def test_summary_and_repr(self, fig2_dag):
        strategy = PebblingStrategy(fig2_dag, _bennett_configs_fig2())
        summary = strategy.summary()
        assert summary["pebbles"] == 6
        assert summary["moves"] == 10
        assert "steps=10" in repr(strategy)

    def test_move_str(self):
        assert str(PebbleMove("A", True)) == "pebble(A)"
        assert str(PebbleMove("A", False)) == "unpebble(A)"


class TestWeightMetrics:
    def test_weight_profile_and_max_weight(self, fig2_dag):
        fig2_dag.node("E").weight = 3.0
        strategy = bennett_strategy(fig2_dag)
        profile = strategy.weight_profile()
        assert len(profile) == strategy.num_steps + 1
        assert profile[0] == 0.0
        assert strategy.max_weight == max(profile)
        # E adds two extra units over the pure pebble count peak.
        assert strategy.max_weight == strategy.max_pebbles + 2

    def test_unit_weights_match_pebble_profile(self, fig2_dag):
        strategy = bennett_strategy(fig2_dag)
        assert strategy.weight_profile() == [
            float(count) for count in strategy.pebble_profile()
        ]
        assert strategy.max_weight == float(strategy.max_pebbles)
