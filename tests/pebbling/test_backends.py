"""Backend threading through the pebbling engine.

Verdict/step parity across the native, DPLL and stub-external backends on
small instances, producer metadata on results, and the fail-fast
validation that replaced the silent solver-factory fallback.
"""

from __future__ import annotations

import pytest

from repro.errors import PebblingError, SolverError
from repro.pebbling import EncodingOptions, PebblingOutcome, ReversiblePebblingSolver
from repro.pebbling.search import GeometricRefine, LinearSearch
from repro.pebbling.solver import pebble_dag
from repro.workloads import load_workload
from tests.external_stub_solver import stub_backend_spec

STUB_SPEC = stub_backend_spec()

ALL_BACKENDS = ["cdcl", "dpll", STUB_SPEC]


class TestBackendSelection:
    def test_unknown_backend_fails_at_construction(self):
        with pytest.raises(SolverError, match="registered backends"):
            ReversiblePebblingSolver(load_workload("fig2"), backend="bogus")

    def test_unavailable_backend_fails_at_construction(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAT_EXTERNAL", raising=False)
        with pytest.raises(SolverError, match="not usable on this host"):
            ReversiblePebblingSolver(load_workload("fig2"), backend="external")

    def test_backend_and_factory_conflict(self):
        from repro.sat.solver import CdclSolver

        with pytest.raises(PebblingError, match="not both"):
            ReversiblePebblingSolver(
                load_workload("fig2"), backend="dpll", solver_factory=CdclSolver
            )

    def test_options_backend_is_default(self):
        solver = ReversiblePebblingSolver(
            load_workload("fig2"), options=EncodingOptions(backend="dpll")
        )
        assert solver.backend == "dpll"

    def test_explicit_backend_wins_over_options(self):
        solver = ReversiblePebblingSolver(
            load_workload("fig2"),
            options=EncodingOptions(backend="dpll"),
            backend="cdcl",
        )
        assert solver.backend == "cdcl"

    def test_options_backend_must_be_string(self):
        from repro.sat.solver import CdclSolver

        with pytest.raises(PebblingError, match="spec"):
            EncodingOptions(backend=CdclSolver)  # type: ignore[arg-type]


@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestBackendParity:
    def test_fig2_feasible_budget(self, backend):
        result = ReversiblePebblingSolver(
            load_workload("fig2"), backend=backend
        ).solve(4, time_limit=120)
        assert result.outcome is PebblingOutcome.SOLUTION
        assert result.num_steps == 6
        assert result.backend == backend

    def test_fig2_structurally_infeasible_budget(self, backend):
        result = ReversiblePebblingSolver(
            load_workload("fig2"), backend=backend
        ).solve(2, time_limit=120)
        assert result.outcome is PebblingOutcome.INFEASIBLE
        assert result.complete

    def test_fig2_unsat_sweep_hits_step_limit(self, backend):
        # Budget 3 is infeasible but above the structural bound, so every
        # probed bound answers UNSAT until the step guard cuts the sweep.
        # (The guard sits at 5: exhaustive DPLL UNSAT proofs blow up
        # exponentially a couple of frames later.)
        result = ReversiblePebblingSolver(
            load_workload("fig2"), backend=backend
        ).solve(3, time_limit=120, max_steps=5)
        assert result.outcome is PebblingOutcome.STEP_LIMIT
        assert result.complete

    def test_monolithic_mode(self, backend):
        result = ReversiblePebblingSolver(
            load_workload("fig2"), backend=backend, incremental=False
        ).solve(4, time_limit=120)
        assert result.num_steps == 6

    def test_strategy_is_legal(self, backend):
        # PebblingStrategy validates legality at construction; reaching a
        # strategy object at all means the model decoded into legal moves.
        result = ReversiblePebblingSolver(
            load_workload("fig2"), backend=backend
        ).solve(4, time_limit=120)
        assert result.strategy is not None
        assert result.strategy.max_pebbles <= 4


class TestAttemptCounters:
    def test_dpll_reports_only_tracked_counters(self):
        result = ReversiblePebblingSolver(
            load_workload("fig2"), backend="dpll"
        ).solve(4, time_limit=120)
        for record in result.attempts:
            assert set(record.solver_stats) == {
                "decisions", "propagations", "solve_time",
            }

    def test_external_reports_only_solve_time(self):
        result = ReversiblePebblingSolver(
            load_workload("fig2"), backend=STUB_SPEC
        ).solve(4, time_limit=120)
        for record in result.attempts:
            assert set(record.solver_stats) == {"solve_time"}

    def test_cdcl_reports_full_counter_set(self):
        result = ReversiblePebblingSolver(load_workload("fig2")).solve(
            4, time_limit=120
        )
        for record in result.attempts:
            assert "blocker_hits" in record.solver_stats


class TestBackendMetadata:
    def test_result_json_round_trips_backend(self):
        dag = load_workload("fig2")
        result = ReversiblePebblingSolver(dag, backend="dpll").solve(
            4, time_limit=120
        )
        from repro.pebbling.solver import PebblingResult

        clone = PebblingResult.from_json(result.to_json(), dag)
        assert clone.backend == "dpll"
        assert clone.num_steps == result.num_steps

    def test_summary_names_backend(self):
        result = pebble_dag(load_workload("fig2"), 4, backend="dpll", time_limit=120)
        assert result.summary()["backend"] == "dpll"


class TestCoreGuidedSearch:
    def test_core_refine_matches_plain_refine(self):
        for workload, budget in [("fig2", 4), ("c17", 4), ("and9", 5)]:
            dag = load_workload(workload)
            plain = ReversiblePebblingSolver(dag).solve(
                budget, strategy=GeometricRefine(), time_limit=120
            )
            core = ReversiblePebblingSolver(dag).solve(
                budget, strategy=GeometricRefine(core_guided=True), time_limit=120
            )
            assert core.outcome == plain.outcome
            assert core.num_steps == plain.num_steps
            assert core.minimal == plain.minimal
            assert len(core.attempts) <= len(plain.attempts)

    def test_core_refine_saves_calls_somewhere(self):
        # The acceptance case: strictly fewer SAT calls on c17 with budget 4.
        dag = load_workload("c17")
        plain = ReversiblePebblingSolver(dag).solve(
            4, strategy=GeometricRefine(), time_limit=120
        )
        core = ReversiblePebblingSolver(dag).solve(
            4, strategy=GeometricRefine(core_guided=True), time_limit=120
        )
        assert core.num_steps == plain.num_steps
        assert len(core.attempts) < len(plain.attempts)

    def test_linear_core_matches_linear(self):
        for workload, budget in [("fig2", 4), ("c17", 4)]:
            dag = load_workload(workload)
            linear = ReversiblePebblingSolver(dag).solve(
                budget, strategy="linear", time_limit=120
            )
            fast = ReversiblePebblingSolver(dag).solve(
                budget, strategy="linear-core", time_limit=120
            )
            assert fast.num_steps == linear.num_steps
            assert fast.minimal == linear.minimal
            assert len(fast.attempts) <= len(linear.attempts)

    def test_core_guided_works_on_every_backend(self):
        # External backends degrade to the trivial core; verdicts must hold.
        for backend in ALL_BACKENDS:
            result = ReversiblePebblingSolver(
                load_workload("fig2"), backend=backend
            ).solve(4, strategy="core-refine", time_limit=120)
            assert result.num_steps == 6
            assert result.minimal

    def test_core_schedules_rejected_without_idle_steps(self):
        dag = load_workload("fig2")
        options = EncodingOptions(forbid_idle_steps=True)
        for strategy in ("core-refine", LinearSearch(core_lookahead=2)):
            with pytest.raises(PebblingError, match="idle steps"):
                ReversiblePebblingSolver(dag, options=options).solve(
                    4, strategy=strategy, time_limit=10
                )

    def test_core_refine_unsat_sweep_stops_at_ceiling(self):
        # An UNSAT-at-ceiling answer must end the search conclusively,
        # core ladder or not.
        result = ReversiblePebblingSolver(load_workload("c17")).solve(
            3, strategy="core-refine", time_limit=120, max_steps=10
        )
        assert result.outcome is PebblingOutcome.STEP_LIMIT
        assert result.complete

    def test_weighted_core_refine(self):
        dag = load_workload("fig2")
        options = EncodingOptions(weighted=True)
        plain = ReversiblePebblingSolver(dag, options=options).solve(
            4, strategy="geometric-refine", time_limit=120
        )
        core = ReversiblePebblingSolver(dag, options=options).solve(
            4, strategy="core-refine", time_limit=120
        )
        assert core.num_steps == plain.num_steps
