"""Tests for the cube-and-conquer layer (cubes, bound board, cancellation).

Soundness of the whole construction rests on three claims, each pinned
here: the cube cover is exhaustive (every assignment of the split
variables falls in at least one cube), bounds published on the board by
one process are observed by another, and a cube-parallel search certifies
the *same* minimum as the sequential one on any instance.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.dag.generators import layered_random_dag
from repro.errors import PebblingError
from repro.pebbling import (
    CancellationToken,
    CubeSet,
    EncodingOptions,
    ReversiblePebblingSolver,
    cubes_cover_exhaustively,
    generate_cubes,
)
from repro.pebbling.cubes import BoardChannel, BoundBoard, Cube, instance_key
from repro.workloads import load_workload, suite_entries


class TestCubeGeneration:
    def test_variable_cubes_cover_exhaustively_on_small_dags(self):
        for name in ("fig2", "and9", "c17"):
            dag = load_workload(name)
            for count in (2, 4, 8):
                cube_set = generate_cubes(dag, count)
                assert cube_set.mode == "variables"
                assert cubes_cover_exhaustively(cube_set)

    def test_variable_cubes_emit_every_sign_combination(self):
        dag = load_workload("fig2")
        cube_set = generate_cubes(dag, 4)
        assert len(cube_set) == 4
        assert len(cube_set.split_points) == 2
        signs = {
            tuple(value for _, _, value in cube.assignments)
            for cube in cube_set.cubes
        }
        assert signs == {(True, True), (True, False), (False, True), (False, False)}

    def test_non_power_of_two_count_rounds_down(self):
        dag = load_workload("and9")
        assert len(generate_cubes(dag, 7)) == 4
        assert len(generate_cubes(dag, 5)) == 4

    def test_single_cube_is_unconstrained(self):
        dag = load_workload("fig2")
        cube_set = generate_cubes(dag, 1)
        assert len(cube_set) == 1
        assert cube_set.cubes[0].assignments == ()
        assert cubes_cover_exhaustively(cube_set)

    def test_bracket_cubes_tile_the_bound_range(self):
        dag = load_workload("fig2")
        cube_set = generate_cubes(dag, 4, mode="brackets", floor=6, ceiling=40)
        assert cube_set.mode == "brackets"
        assert len(cube_set) == 4
        assert cubes_cover_exhaustively(cube_set)
        assert cube_set.cubes[0].step_lo == 6
        assert cube_set.cubes[-1].step_hi is None  # last bracket open-ended

    def test_bracket_cubes_need_a_floor(self):
        dag = load_workload("fig2")
        with pytest.raises(PebblingError):
            generate_cubes(dag, 4, mode="brackets")

    def test_cover_checker_rejects_a_gapped_cover(self):
        # Drop one sign combination: the checker must notice the hole.
        dag = load_workload("fig2")
        cube_set = generate_cubes(dag, 4)
        gapped = CubeSet(
            mode="variables",
            cubes=cube_set.cubes[:-1],
            split_points=cube_set.split_points,
        )
        assert not cubes_cover_exhaustively(gapped)

    def test_cover_checker_rejects_a_gapped_bracket(self):
        gapped = CubeSet(
            mode="brackets",
            cubes=(
                Cube(index=0, step_lo=6, step_hi=9),
                Cube(index=1, step_lo=12, step_hi=None),
            ),
            floor=6,
        )
        assert not cubes_cover_exhaustively(gapped)

    def test_cube_set_id_distinguishes_splits(self):
        dag = load_workload("fig2")
        two = generate_cubes(dag, 2)
        four = generate_cubes(dag, 4)
        assert two.cube_set_id != four.cube_set_id
        assert four.cube_set_id == generate_cubes(dag, 4).cube_set_id

    def test_split_frames_respect_single_move_reachability(self):
        dag = load_workload("fig2")
        multi = generate_cubes(dag, 4)
        single = generate_cubes(
            dag, 4, options=EncodingOptions(max_moves_per_step=1)
        )
        levels = dag.levels()
        for node, step in multi.split_points:
            assert step == levels[node]
        for node, step in single.split_points:
            assert step == len(dag.transitive_fanin(node)) + 1


def _publish_in_child(path: str, instance: str, cube_set: str) -> None:
    board = BoundBoard(path)
    board.publish_refuted(instance, cube_set, -1, 9)
    board.publish_sat(instance, cube_set, 14)
    board.close()


class TestBoundBoard:
    def test_refuted_aggregates_max_and_sat_min(self, tmp_path):
        board = BoundBoard(str(tmp_path / "board.db"))
        board.publish_refuted("inst", "set", -1, 5)
        board.publish_refuted("inst", "set", -1, 3)  # weaker: ignored
        board.publish_sat("inst", "set", 20)
        board.publish_sat("inst", "set", 12)
        board.publish_sat("inst", "set", 15)  # weaker: ignored
        view = board.poll("inst", "set", 0)
        assert view.refuted == 5
        assert view.known_sat == 12
        board.close()

    def test_per_cube_refutations_aggregate_only_when_complete(self, tmp_path):
        board = BoundBoard(str(tmp_path / "board.db"))
        board.publish_refuted("inst", "set", 0, 10)
        board.publish_refuted("inst", "set", 1, 8)
        # One of three cubes still silent: no instance-level refutation.
        assert board.poll("inst", "set", 3).refuted is None
        board.publish_refuted("inst", "set", 2, 12)
        # All three reported: the *weakest* cube bounds the instance.
        assert board.poll("inst", "set", 3).refuted == 8
        board.close()

    def test_global_row_and_cube_rows_combine(self, tmp_path):
        board = BoundBoard(str(tmp_path / "board.db"))
        board.publish_refuted("inst", "set", -1, 11)  # assumption-free
        board.publish_refuted("inst", "set", 0, 6)
        board.publish_refuted("inst", "set", 1, 7)
        assert board.poll("inst", "set", 2).refuted == 11
        board.close()

    def test_bounds_published_by_another_process_are_observed(self, tmp_path):
        path = str(tmp_path / "board.db")
        dag = load_workload("fig2")
        instance = instance_key(dag, EncodingOptions(), 4)
        cube_set = generate_cubes(dag, 4).cube_set_id
        context = multiprocessing.get_context()
        child = context.Process(
            target=_publish_in_child, args=(path, instance, cube_set)
        )
        child.start()
        child.join(timeout=30)
        assert child.exitcode == 0
        channel = BoardChannel(
            path=path, instance=instance, cube_set=cube_set, cube=-1, cube_count=0
        )
        view = channel.poll()
        assert view.refuted == 9
        assert view.known_sat == 14

    def test_instance_key_separates_budgets_and_options(self):
        dag = load_workload("fig2")
        options = EncodingOptions()
        assert instance_key(dag, options, 4) != instance_key(dag, options, 5)
        assert instance_key(dag, options, 4) == instance_key(dag, options, 4)
        single = EncodingOptions(max_moves_per_step=1)
        assert instance_key(dag, options, 4) != instance_key(dag, single, 4)


class TestCancellationToken:
    def test_round_trips_through_its_path(self, tmp_path):
        token = CancellationToken(str(tmp_path / "winner.cancel"))
        assert not token.cancelled()
        token.cancel()
        token.cancel()  # idempotent
        assert token.cancelled()
        assert CancellationToken(token.path).cancelled()

    def test_cancel_survives_a_vanished_scratch_dir(self, tmp_path):
        token = CancellationToken(str(tmp_path / "gone" / "winner.cancel"))
        token.cancel()  # parent directory missing: no-op, no raise
        assert not token.cancelled()


class TestCubeSearchSoundness:
    def test_cube_search_matches_sequential_on_the_default_suite(self):
        for entry in suite_entries("default"):
            dag = load_workload(entry.workload)
            options = EncodingOptions(
                max_moves_per_step=1 if entry.single_move else None
            )
            sequential = ReversiblePebblingSolver(dag, options=options).solve(
                entry.pebbles, time_limit=60
            )
            cubed = ReversiblePebblingSolver(dag, options=options).solve(
                entry.pebbles, time_limit=60, cubes=4
            )
            assert cubed.outcome.value == sequential.outcome.value, entry
            assert cubed.num_steps == sequential.num_steps, entry
            if sequential.minimal:
                assert cubed.minimal, entry

    @settings(max_examples=12, deadline=None)
    @given(
        num_nodes=st.integers(min_value=3, max_value=10),
        depth=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
        count=st.sampled_from([2, 4]),
    )
    def test_cube_search_certifies_the_sequential_minimum(
        self, num_nodes, depth, seed, count
    ):
        dag = layered_random_dag(num_nodes, 1, depth=depth, seed=seed)
        budget = ReversiblePebblingSolver(dag).minimum_pebbles_lower_bound() + 1
        sequential = ReversiblePebblingSolver(dag).solve(budget, time_limit=60)
        cubed = ReversiblePebblingSolver(dag).solve(
            budget, time_limit=60, cubes=count
        )
        assert cubed.outcome.value == sequential.outcome.value
        assert cubed.num_steps == sequential.num_steps
        if sequential.found and sequential.minimal:
            assert cubed.minimal

    def test_bracket_mode_matches_sequential(self):
        dag = load_workload("fig2")
        sequential = ReversiblePebblingSolver(dag).solve(4, time_limit=60)
        solver = ReversiblePebblingSolver(dag)
        from repro.pebbling import run_cube_search

        merged = run_cube_search(
            solver, 4, cubes=4, mode="brackets", time_limit=60
        )
        assert merged.num_steps == sequential.num_steps
        assert merged.minimal

    def test_cube_search_over_a_process_pool(self):
        dag = load_workload("fig2")
        result = ReversiblePebblingSolver(dag).solve(
            4, cubes=4, cube_jobs=4, time_limit=60
        )
        assert result.found and result.num_steps == 6 and result.minimal
        assert result.cubes["jobs"] == 4

    def test_cube_result_reports_lane_metadata(self):
        dag = load_workload("fig2")
        result = ReversiblePebblingSolver(dag).solve(4, cubes=4, time_limit=60)
        meta = result.cubes
        assert meta["count"] == 4
        assert meta["certified"] is True
        assert len(meta["lanes"]) == 4
        assert meta["winner"] in range(4)
        assert meta["board"]["published"] > 0
        # Lanes after the winner either clamp to a shared bound or are
        # cancelled outright once the board certificate closes (the latter
        # happens when the winner's refutation cores never touched its cube
        # literals, so its whole ladder published to the global row).
        assert result.shared_bound_hits >= 1 or meta["cancelled"]

    def test_infeasible_budget_short_circuits(self):
        dag = load_workload("fig2")
        result = ReversiblePebblingSolver(dag).solve(1, cubes=4)
        assert result.outcome.value == "infeasible"
        assert result.complete and not result.attempts

    def test_cube_search_rejects_non_incremental(self):
        dag = load_workload("fig2")
        solver = ReversiblePebblingSolver(dag, incremental=False)
        with pytest.raises(PebblingError):
            solver.solve(4, cubes=4)

    def test_cube_results_share_the_sequential_cache_key(self, tmp_path):
        from repro.store import ResultStore

        dag = load_workload("fig2")
        db = str(tmp_path / "cache.db")
        with ResultStore(db) as store:
            cubed = ReversiblePebblingSolver(dag).solve(
                4, cubes=4, time_limit=60, store=store
            )
            assert cubed.found
            hits_before = store.stats().total_hits
            sequential = ReversiblePebblingSolver(dag).solve(
                4, time_limit=60, store=store
            )
            assert store.stats().total_hits == hits_before + 1
            assert sequential.num_steps == cubed.num_steps

    def test_cancelled_lanes_report_cancelled_outcome(self, tmp_path):
        # A pre-raised token stops the search before its first SAT call.
        token = CancellationToken(str(tmp_path / "winner.cancel"))
        token.cancel()
        dag = load_workload("fig2")
        result = ReversiblePebblingSolver(dag).solve(4, cancel=token)
        assert result.outcome.value == "cancelled"
        assert not result.complete
        assert not result.attempts
        assert result.partial["cancelled"] is True
