"""Tests for the fault-tolerant portfolio layer: retries, backoff, rebuilds.

Covers :class:`RetryPolicy` validation and its deterministic, monotone
backoff schedule (including a hypothesis property over the policy knobs),
the retry loop in ``_execute_task`` healing chaos-injected faults, the
``traceback`` field on error records, byte-identical determinism of
(task, chaos seed, policy) triples, and the ``BrokenProcessPool``
rebuild/abandon paths driven by the chaos ``exit`` fault.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PebblingError
from repro.pebbling.portfolio import (
    PortfolioHealth,
    PortfolioTask,
    RetryPolicy,
    _execute_task,
    run_portfolio,
)
from repro.sat.backend import set_chaos_scope


@pytest.fixture(autouse=True)
def _reset_scope():
    set_chaos_scope("", attempt=0, epoch=0)
    yield
    set_chaos_scope("", attempt=0, epoch=0)


def _task(backend: str = "cdcl", **overrides) -> PortfolioTask:
    parameters = dict(workload="fig2", pebbles=4, time_limit=20.0,
                      backend=backend)
    parameters.update(overrides)
    return PortfolioTask(**parameters)


class TestRetryPolicy:
    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay": -0.1},
        {"backoff_factor": 0.5},
        {"jitter": 1.5},
        {"jitter": -0.1},
        {"attempt_time_limit": 0.0},
        {"total_time_limit": -1.0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(PebblingError):
            RetryPolicy(**kwargs)

    def test_no_delay_before_first_attempt(self):
        assert RetryPolicy().delay_before(0) == 0.0

    def test_delays_are_deterministic_per_key(self):
        policy = RetryPolicy(max_attempts=5, jitter=0.5)
        first = [policy.delay_before(n, key="task-a") for n in range(1, 5)]
        second = [policy.delay_before(n, key="task-a") for n in range(1, 5)]
        assert first == second
        other = [policy.delay_before(n, key="task-b") for n in range(1, 5)]
        assert first != other  # jitter is keyed, not shared

    def test_delays_grow_exponentially_up_to_the_cap(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=0.1, backoff_factor=2.0,
            max_delay=0.4, jitter=0.0,
        )
        assert policy.delay_before(1) == pytest.approx(0.1)
        assert policy.delay_before(2) == pytest.approx(0.2)
        assert policy.delay_before(3) == pytest.approx(0.4)
        assert policy.delay_before(4) == pytest.approx(0.4)  # clamped

    @given(
        base_delay=st.floats(0.0, 1.0),
        backoff_factor=st.floats(1.0, 4.0),
        max_delay=st.floats(0.0, 2.0),
        jitter=st.floats(0.0, 1.0),
        key=st.text(max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_backoff_is_monotone_non_decreasing(
        self, base_delay, backoff_factor, max_delay, jitter, key
    ):
        policy = RetryPolicy(
            max_attempts=8, base_delay=base_delay,
            backoff_factor=backoff_factor, max_delay=max_delay, jitter=jitter,
        )
        delays = [policy.delay_before(n, key=key) for n in range(9)]
        assert all(late >= early for early, late in zip(delays, delays[1:]))


class TestRetryExecution:
    def test_flaky_task_heals_with_retries(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        record = _execute_task(_task("chaos:3,flaky=1"), None, policy)
        assert record.outcome == "solution"
        assert record.steps == 6
        assert record.complete
        assert record.retries == 1
        assert record.error is None

    def test_flaky_task_without_policy_is_an_error_with_traceback(self):
        record = _execute_task(_task("chaos:3,flaky=1"))
        assert record.outcome == "error"
        assert record.retries == 0
        assert record.traceback is not None
        assert "ChaosInjectedError" in record.traceback

    def test_exhausted_retries_keep_the_best_record(self):
        # flaky=999 fails every attempt-0 call; attempts 1+ heal, so only
        # max_attempts=1 stays broken.
        policy = RetryPolicy(max_attempts=1, base_delay=0.0)
        record = _execute_task(_task("chaos:3,flaky=999"), None, policy)
        assert record.outcome == "error"
        assert record.traceback is not None

    def test_successful_task_never_retries(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0)
        record = _execute_task(_task(), None, policy)
        assert record.outcome == "solution"
        assert record.retries == 0

    def test_health_counters_absorb_retries(self):
        health = PortfolioHealth()
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        records = run_portfolio(
            [_task("chaos:3,flaky=1"), _task()], retry=policy, health=health
        )
        assert [record.retries for record in records] == [1, 0]
        assert health.retried_tasks == 1
        assert health.retry_attempts == 1
        assert health.pool_rebuilds == 0

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_identical_triples_are_byte_identical(self, seed):
        """Same (task, chaos seed, policy) ⇒ byte-identical records.

        Wall-clock can never be byte-identical, so the ``runtime`` field is
        stripped before comparing; everything else — outcome, steps,
        retries, partials, errors — must reproduce exactly.
        """
        policy = RetryPolicy(max_attempts=4, base_delay=0.0)
        task = _task(f"chaos:{seed},flaky=1,crash=0.05,unknown=0.05")

        def normalised() -> str:
            record = _execute_task(task, None, policy).as_dict()
            record.pop("runtime")
            return json.dumps(record, sort_keys=True)

        assert normalised() == normalised()


class TestPoolRebuild:
    def test_broken_pool_is_rebuilt_and_work_resubmitted(self):
        # exit=1 hard-kills the worker on its first solve call of epoch 0;
        # the resubmission runs at epoch 1, where the fault is silent.
        health = PortfolioHealth()
        records = run_portfolio(
            [_task("chaos:3,exit=1")], jobs=2, force_pool=True, health=health
        )
        assert [record.outcome for record in records] == ["solution"]
        assert records[0].steps == 6
        assert health.pool_rebuilds >= 1

    def test_rebuild_limit_abandons_with_error_records(self):
        records = run_portfolio(
            [_task("chaos:3,exit=1")], jobs=2, force_pool=True,
            pool_rebuild_limit=0,
        )
        assert records[0].outcome == "error"
        assert "rebuild limit" in records[0].error

    def test_negative_rebuild_limit_rejected(self):
        with pytest.raises(PebblingError):
            run_portfolio([_task()], pool_rebuild_limit=-1)
