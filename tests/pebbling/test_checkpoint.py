"""Tests for anytime answers: search checkpoints and result partials.

Every search cursor must be able to report a sound checkpoint — the next
bound it would try, the bounds refuted so far, any known-SAT witness bound
— and :class:`PebblingResult` must carry that snapshot in its ``partial``
field exactly when the search did not run to completion.
"""

from __future__ import annotations

import pytest

from repro.pebbling.solver import (
    PebblingOutcome,
    PebblingResult,
    ReversiblePebblingSolver,
)


CHECKPOINT_KEYS = {"next_bound", "refuted_through", "known_sat"}


class TestResultPartials:
    def test_complete_result_has_no_partial(self, fig2_dag):
        result = ReversiblePebblingSolver(fig2_dag).solve(4, time_limit=60)
        assert result.complete
        assert result.partial is None

    def test_infeasible_result_has_no_partial(self, fig2_dag):
        result = ReversiblePebblingSolver(fig2_dag).solve(1, time_limit=60)
        assert result.outcome is PebblingOutcome.INFEASIBLE
        assert result.partial is None

    @pytest.mark.parametrize("schedule", ["linear", "geometric", "geometric-refine"])
    def test_timeout_carries_a_checkpoint(self, and9_dag, schedule):
        result = ReversiblePebblingSolver(and9_dag).solve(
            4, strategy=schedule, time_limit=0.05
        )
        assert result.outcome is PebblingOutcome.TIMEOUT
        assert result.partial is not None
        assert set(result.partial) == {"checkpoint", "best_steps", "sat_calls"}
        checkpoint = result.partial["checkpoint"]
        assert set(checkpoint) == CHECKPOINT_KEYS
        assert checkpoint["next_bound"] >= 1
        assert result.partial["sat_calls"] == len(result.attempts)

    def test_refuted_bounds_are_sound(self, and9_dag):
        # and9 with 4 pebbles is infeasible: every refuted bound the
        # checkpoint claims must be below the bound the search would try
        # next, and no SAT witness may be reported.
        result = ReversiblePebblingSolver(and9_dag).solve(
            4, strategy="linear", time_limit=0.3
        )
        assert result.outcome is PebblingOutcome.TIMEOUT
        checkpoint = result.partial["checkpoint"]
        refuted = checkpoint["refuted_through"]
        if refuted is not None:
            assert refuted < checkpoint["next_bound"]
        assert checkpoint["known_sat"] is None

    def test_feasible_timeout_reports_best_steps(self, and9_dag):
        # A budget that *is* feasible but times out mid-refinement still
        # checkpoints; best_steps mirrors the best witness found (None if
        # the timeout hit before any SAT answer).
        result = ReversiblePebblingSolver(and9_dag).solve(
            5, strategy="geometric-refine", time_limit=0.0
        )
        assert result.outcome is PebblingOutcome.TIMEOUT
        assert result.partial["best_steps"] == result.num_steps


class TestPartialSerialisation:
    def test_schema_version_is_3(self, fig2_dag):
        result = ReversiblePebblingSolver(fig2_dag).solve(4, time_limit=60)
        assert result.to_json()["schema"] == 3

    def test_partial_round_trips_through_json(self, and9_dag):
        result = ReversiblePebblingSolver(and9_dag).solve(
            4, strategy="linear", time_limit=0.05
        )
        assert result.partial is not None
        restored = PebblingResult.from_json(result.to_json(), and9_dag)
        assert restored.partial == result.partial
        assert restored.complete is False

    def test_missing_partial_defaults_to_none(self, fig2_dag):
        result = ReversiblePebblingSolver(fig2_dag).solve(4, time_limit=60)
        data = result.to_json()
        del data["partial"]  # a schema-2 payload
        restored = PebblingResult.from_json(data, fig2_dag)
        assert restored.partial is None
