"""Tests for the greedy heuristic pebblers."""

import pytest

from repro.errors import PebblingError
from repro.dag import linear_chain, tree_dag
from repro.pebbling import (
    bennett_strategy,
    eager_bennett_strategy,
    greedy_pebbling_strategy,
)
from repro.workloads import load_workload


class TestCommonBehaviour:
    @pytest.mark.parametrize("mode", ["recursive", "cone"])
    def test_produces_valid_strategies(self, mode, fig2_dag, and9_dag, diamond_dag, chain_dag):
        # PebblingStrategy validates on construction, so reaching here is the test.
        for dag in (fig2_dag, and9_dag, diamond_dag, chain_dag):
            strategy = greedy_pebbling_strategy(dag, mode=mode)
            assert strategy.configurations[-1] == frozenset(dag.outputs())

    def test_unknown_mode_rejected(self, fig2_dag):
        with pytest.raises(PebblingError):
            greedy_pebbling_strategy(fig2_dag, mode="magic")

    def test_invalid_threshold_rejected(self, fig2_dag):
        with pytest.raises(PebblingError):
            greedy_pebbling_strategy(fig2_dag, keep_fanout_threshold=0)

    @pytest.mark.parametrize("mode", ["recursive", "cone"])
    def test_handles_multi_output_dags(self, mode, fig2_dag):
        strategy = greedy_pebbling_strategy(fig2_dag, mode=mode)
        assert strategy.configurations[-1] == frozenset({"E", "F"})


class TestRecursiveMode:
    def test_trees_use_depth_proportional_pebbles(self):
        """On a balanced binary AND tree the recursive heuristic needs a
        number of pebbles proportional to the depth, far fewer than
        Bennett's node count."""
        dag = tree_dag(32)
        strategy = greedy_pebbling_strategy(dag, keep_fanout_threshold=2)
        assert strategy.max_pebbles <= 2 * dag.depth() + 2
        assert strategy.max_pebbles < bennett_strategy(dag).max_pebbles

    def test_aggressive_uncompute_trades_moves_for_pebbles(self):
        dag = load_workload("kummer-add")
        conservative = greedy_pebbling_strategy(dag, keep_fanout_threshold=1)
        aggressive = greedy_pebbling_strategy(dag, keep_fanout_threshold=100)
        assert aggressive.max_pebbles <= conservative.max_pebbles
        assert aggressive.num_moves >= conservative.num_moves

    def test_keep_everything_matches_bennett_move_count(self, and9_dag):
        strategy = greedy_pebbling_strategy(and9_dag, keep_fanout_threshold=1)
        assert strategy.num_moves == eager_bennett_strategy(and9_dag).num_moves

    def test_max_pebbles_guard(self, chain_dag):
        with pytest.raises(PebblingError):
            greedy_pebbling_strategy(chain_dag, max_pebbles=2)

    def test_max_pebbles_satisfiable_budget(self, and9_dag):
        strategy = greedy_pebbling_strategy(and9_dag, max_pebbles=8)
        assert strategy.max_pebbles <= 8

    def test_move_budget_guard(self):
        dag = linear_chain(40)
        with pytest.raises(PebblingError):
            greedy_pebbling_strategy(dag, max_moves=200)

    def test_chains_are_the_worst_case(self):
        """On a pure chain the naive recursive strategy cannot save pebbles
        (checkpoint placement would be needed, which is exactly what the SAT
        engine figures out); it must still stay legal and within Bennett's
        pebble count while paying heavy recomputation."""
        dag = linear_chain(8)
        recursive = greedy_pebbling_strategy(dag, mode="recursive")
        bennett = bennett_strategy(dag)
        assert recursive.max_pebbles <= bennett.max_pebbles
        assert recursive.num_moves > bennett.num_moves


class TestConeMode:
    def test_chain_behaves_like_bennett(self):
        dag = linear_chain(6)
        strategy = greedy_pebbling_strategy(dag, mode="cone")
        # A chain offers no sharing: the cone strategy pebbles straight up
        # and then cleans up, just like Bennett.
        assert strategy.max_pebbles == 6
        assert strategy.num_moves == 11

    def test_multi_output_cone_cleanup_saves_pebbles(self):
        """Separate output cones are cleaned before the next one starts, so
        the peak stays near the size of the largest cone."""
        dag = load_workload("hadamard")
        cone = greedy_pebbling_strategy(dag, mode="cone", keep_fanout_threshold=10)
        assert cone.max_pebbles <= bennett_strategy(dag).max_pebbles

    def test_move_count_stays_close_to_bennett(self, and9_dag):
        cone = greedy_pebbling_strategy(and9_dag, mode="cone")
        bennett = bennett_strategy(and9_dag)
        assert cone.num_moves <= 2 * bennett.num_moves
