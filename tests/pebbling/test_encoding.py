"""Tests for the SAT encoding of the bounded pebbling game."""

import pytest

from repro.errors import PebblingError
from repro.pebbling import EncodingOptions, PebblingEncoder, PebblingStrategy
from repro.pebbling.bennett import bennett_strategy
from repro.sat.cards import CardinalityEncoding
from repro.sat.solver import CdclSolver


class TestEncodingStructure:
    def test_variable_count(self, fig2_dag):
        encoder = PebblingEncoder(fig2_dag)
        encoding = encoder.encode(max_pebbles=4, num_steps=5)
        # One pebble variable per node and time point, plus cardinality
        # auxiliaries; the named pebble variables must all be distinct.
        assert len(encoding.pebble_variables) == 6 * 6
        assert len(set(encoding.pebble_variables.values())) == 6 * 6
        assert encoding.cnf.num_variables >= 6 * 6

    def test_variable_lookup(self, fig2_dag):
        encoding = PebblingEncoder(fig2_dag).encode(max_pebbles=4, num_steps=3)
        assert encoding.variable("A", 0) == encoding.pebble_variables[("A", 0)]
        with pytest.raises(PebblingError):
            encoding.variable("A", 99)

    def test_no_cardinality_clauses_when_budget_covers_all_nodes(self, fig2_dag):
        loose = PebblingEncoder(fig2_dag).encode(max_pebbles=6, num_steps=3)
        tight = PebblingEncoder(fig2_dag).encode(max_pebbles=3, num_steps=3)
        assert tight.cnf.num_clauses > loose.cnf.num_clauses

    def test_invalid_parameters_rejected(self, fig2_dag):
        encoder = PebblingEncoder(fig2_dag)
        with pytest.raises(PebblingError):
            encoder.encode(max_pebbles=0, num_steps=3)
        with pytest.raises(PebblingError):
            encoder.encode(max_pebbles=3, num_steps=0)

    def test_options_validation(self):
        with pytest.raises(PebblingError):
            EncodingOptions(max_moves_per_step=0)


class TestEncodingSemantics:
    def _solve(self, dag, max_pebbles, num_steps, options=None):
        encoder = PebblingEncoder(dag, options=options)
        encoding = encoder.encode(max_pebbles=max_pebbles, num_steps=num_steps)
        result = CdclSolver(encoding.cnf).solve()
        return encoding, result

    def test_bennett_number_of_steps_is_satisfiable(self, fig2_dag):
        options = EncodingOptions(max_moves_per_step=1)
        encoding, result = self._solve(fig2_dag, 6, 10, options)
        assert result.is_sat
        strategy = PebblingStrategy(
            fig2_dag, encoding.configurations_from_model(result.model), max_moves_per_step=1
        )
        assert strategy.max_pebbles <= 6

    def test_too_few_steps_is_unsatisfiable(self, fig2_dag):
        # With one move per step, fewer than 2|V| - |O| = 10 steps cannot work.
        options = EncodingOptions(max_moves_per_step=1)
        _, result = self._solve(fig2_dag, 6, 9, options)
        assert result.is_unsat

    def test_too_few_pebbles_is_unsatisfiable(self, fig2_dag):
        _, result = self._solve(fig2_dag, 2, 20)
        assert result.is_unsat

    def test_extracted_model_is_a_valid_strategy(self, fig2_dag):
        encoding, result = self._solve(fig2_dag, 4, 8)
        assert result.is_sat
        strategy = PebblingStrategy(fig2_dag, encoding.configurations_from_model(result.model))
        assert strategy.max_pebbles <= 4

    def test_multi_move_needs_fewer_transitions(self, fig2_dag):
        # Multi-move: depth 3 + cleanup fits in far fewer than 10 transitions.
        _, result = self._solve(fig2_dag, 6, 5)
        assert result.is_sat

    @pytest.mark.parametrize("encoding_kind", list(CardinalityEncoding))
    def test_all_cardinality_encodings_agree(self, fig2_dag, encoding_kind):
        options = EncodingOptions(cardinality=encoding_kind)
        _, sat_result = self._solve(fig2_dag, 4, 8, options)
        assert sat_result.is_sat
        _, unsat_result = self._solve(fig2_dag, 3, 30, options)
        assert unsat_result.is_unsat

    def test_forbid_idle_steps(self, fig2_dag):
        options = EncodingOptions(forbid_idle_steps=True, max_moves_per_step=1)
        # Exactly 10 steps with no idling: satisfiable.
        _, result = self._solve(fig2_dag, 6, 10, options)
        assert result.is_sat
        # 11 steps with exactly one move each and no idling cannot end in the
        # required final configuration (parity argument).
        _, result_odd = self._solve(fig2_dag, 6, 11, options)
        assert result_odd.is_unsat

    def test_strategy_from_bennett_satisfies_encoding(self, fig2_dag):
        """Injecting the Bennett strategy as assumptions must be satisfiable."""
        strategy = bennett_strategy(fig2_dag)
        encoder = PebblingEncoder(fig2_dag)
        encoding = encoder.encode(max_pebbles=6, num_steps=strategy.num_steps)
        assumptions = []
        for step, config in enumerate(strategy.configurations):
            for node in fig2_dag.nodes():
                variable = encoding.variable(node, step)
                assumptions.append(variable if node in config else -variable)
        solver = CdclSolver(encoding.cnf)
        assert solver.solve(assumptions).is_sat
