"""Tests for the SAT encoding of the bounded pebbling game."""

from collections import Counter

import pytest

from repro.errors import PebblingError
from repro.pebbling import EncodingOptions, PebblingEncoder, PebblingStrategy
from repro.pebbling.bennett import bennett_strategy
from repro.sat.cards import CardinalityEncoding, at_most_k
from repro.sat.cnf import Cnf
from repro.sat.solver import CdclSolver


class TestEncodingStructure:
    def test_variable_count(self, fig2_dag):
        encoder = PebblingEncoder(fig2_dag)
        encoding = encoder.encode(max_pebbles=4, num_steps=5)
        # One pebble variable per node and time point, plus cardinality
        # auxiliaries; the named pebble variables must all be distinct.
        assert len(encoding.pebble_variables) == 6 * 6
        assert len(set(encoding.pebble_variables.values())) == 6 * 6
        assert encoding.cnf.num_variables >= 6 * 6

    def test_variable_lookup(self, fig2_dag):
        encoding = PebblingEncoder(fig2_dag).encode(max_pebbles=4, num_steps=3)
        assert encoding.variable("A", 0) == encoding.pebble_variables[("A", 0)]
        with pytest.raises(PebblingError):
            encoding.variable("A", 99)

    def test_no_cardinality_clauses_when_budget_covers_all_nodes(self, fig2_dag):
        loose = PebblingEncoder(fig2_dag).encode(max_pebbles=6, num_steps=3)
        tight = PebblingEncoder(fig2_dag).encode(max_pebbles=3, num_steps=3)
        assert tight.cnf.num_clauses > loose.cnf.num_clauses

    def test_invalid_parameters_rejected(self, fig2_dag):
        encoder = PebblingEncoder(fig2_dag)
        with pytest.raises(PebblingError):
            encoder.encode(max_pebbles=0, num_steps=3)
        with pytest.raises(PebblingError):
            encoder.encode(max_pebbles=3, num_steps=0)

    def test_options_validation(self):
        with pytest.raises(PebblingError):
            EncodingOptions(max_moves_per_step=0)


class TestEncodingSemantics:
    def _solve(self, dag, max_pebbles, num_steps, options=None):
        encoder = PebblingEncoder(dag, options=options)
        encoding = encoder.encode(max_pebbles=max_pebbles, num_steps=num_steps)
        result = CdclSolver(encoding.cnf).solve()
        return encoding, result

    def test_bennett_number_of_steps_is_satisfiable(self, fig2_dag):
        options = EncodingOptions(max_moves_per_step=1)
        encoding, result = self._solve(fig2_dag, 6, 10, options)
        assert result.is_sat
        strategy = PebblingStrategy(
            fig2_dag, encoding.configurations_from_model(result.model), max_moves_per_step=1
        )
        assert strategy.max_pebbles <= 6

    def test_too_few_steps_is_unsatisfiable(self, fig2_dag):
        # With one move per step, fewer than 2|V| - |O| = 10 steps cannot work.
        options = EncodingOptions(max_moves_per_step=1)
        _, result = self._solve(fig2_dag, 6, 9, options)
        assert result.is_unsat

    def test_too_few_pebbles_is_unsatisfiable(self, fig2_dag):
        _, result = self._solve(fig2_dag, 2, 20)
        assert result.is_unsat

    def test_extracted_model_is_a_valid_strategy(self, fig2_dag):
        encoding, result = self._solve(fig2_dag, 4, 8)
        assert result.is_sat
        strategy = PebblingStrategy(fig2_dag, encoding.configurations_from_model(result.model))
        assert strategy.max_pebbles <= 4

    def test_multi_move_needs_fewer_transitions(self, fig2_dag):
        # Multi-move: depth 3 + cleanup fits in far fewer than 10 transitions.
        _, result = self._solve(fig2_dag, 6, 5)
        assert result.is_sat

    @pytest.mark.parametrize("encoding_kind", list(CardinalityEncoding))
    def test_all_cardinality_encodings_agree(self, fig2_dag, encoding_kind):
        options = EncodingOptions(cardinality=encoding_kind)
        _, sat_result = self._solve(fig2_dag, 4, 8, options)
        assert sat_result.is_sat
        _, unsat_result = self._solve(fig2_dag, 3, 30, options)
        assert unsat_result.is_unsat

    def test_forbid_idle_steps(self, fig2_dag):
        options = EncodingOptions(forbid_idle_steps=True, max_moves_per_step=1)
        # Exactly 10 steps with no idling: satisfiable.
        _, result = self._solve(fig2_dag, 6, 10, options)
        assert result.is_sat
        # 11 steps with exactly one move each and no idling cannot end in the
        # required final configuration (parity argument).
        _, result_odd = self._solve(fig2_dag, 6, 11, options)
        assert result_odd.is_unsat

    def test_frame_comment_records_steps(self, fig2_dag):
        encoding = PebblingEncoder(fig2_dag).encode(max_pebbles=4, num_steps=5)
        assert "steps=5" in encoding.cnf.comments[0]

    def test_strategy_from_bennett_satisfies_encoding(self, fig2_dag):
        """Injecting the Bennett strategy as assumptions must be satisfiable."""
        strategy = bennett_strategy(fig2_dag)
        encoder = PebblingEncoder(fig2_dag)
        encoding = encoder.encode(max_pebbles=6, num_steps=strategy.num_steps)
        assumptions = []
        for step, config in enumerate(strategy.configurations):
            for node in fig2_dag.nodes():
                variable = encoding.variable(node, step)
                assumptions.append(variable if node in config else -variable)
        solver = CdclSolver(encoding.cnf)
        assert solver.solve(assumptions).is_sat


# ---------------------------------------------------------------------------
# frame-based encoder: parity with the historical monolithic emission
# ---------------------------------------------------------------------------
def _frozen_monolithic_cnf(dag, max_pebbles, num_steps, options):
    """The pre-frame-engine ``PebblingEncoder.encode`` clause emission.

    A verbatim re-implementation of the historical monolithic encoder
    (variables allocated whole-timeline first, clause groups emitted
    globally), kept here as the reference for the parity test.  The only
    change is that cardinality auxiliaries are *named* with the same
    per-step prefixes the frame engine uses, so the two CNFs can be
    compared up to variable renaming.
    """
    nodes = dag.topological_order()
    outputs = set(dag.outputs())
    cnf = Cnf()
    variables = {}
    for step in range(num_steps + 1):
        for node in nodes:
            variables[(node, step)] = cnf.new_variable(f"p[{node},{step}]")

    for node in nodes:
        cnf.add_unit(-variables[(node, 0)])
    for node in nodes:
        literal = variables[(node, num_steps)]
        cnf.add_unit(literal if node in outputs else -literal)

    for step in range(num_steps):
        for node in nodes:
            now = variables[(node, step)]
            then = variables[(node, step + 1)]
            for dependency in dag.dependencies(node):
                dep_now = variables[(dependency, step)]
                dep_then = variables[(dependency, step + 1)]
                cnf.add_clause([-now, then, dep_now])
                cnf.add_clause([now, -then, dep_now])
                cnf.add_clause([-now, then, dep_then])
                cnf.add_clause([now, -then, dep_then])

    if max_pebbles < len(nodes):
        for step in range(num_steps + 1):
            step_literals = [variables[(node, step)] for node in nodes]
            at_most_k(cnf, step_literals, max_pebbles,
                      encoding=options.cardinality,
                      name_prefix=f"card[p,{step}]")

    if options.max_moves_per_step is not None or options.forbid_idle_steps:
        for step in range(num_steps):
            move_literals = []
            for node in nodes:
                move = cnf.new_variable(f"m[{node},{step}]")
                now = variables[(node, step)]
                then = variables[(node, step + 1)]
                cnf.add_clause([-move, now, then])
                cnf.add_clause([-move, -now, -then])
                cnf.add_clause([move, -now, then])
                cnf.add_clause([move, now, -then])
                move_literals.append(move)
            if options.max_moves_per_step is not None:
                at_most_k(cnf, move_literals, options.max_moves_per_step,
                          encoding=options.cardinality,
                          name_prefix=f"card[m,{step}]")
            if options.forbid_idle_steps:
                cnf.add_clause(move_literals)
    return cnf


def _named_clauses(cnf):
    """Canonicalise a CNF as a multiset of clauses over variable *names*.

    Every variable must be named; the result is independent of variable
    numbering and of clause/literal order, so two structurally identical
    encodings compare equal even when emitted in a different order.
    """
    names = {}
    for variable in range(1, cnf.num_variables + 1):
        name = cnf.pool.name_of(variable)
        assert name is not None, f"variable {variable} is unnamed"
        names[variable] = name
    return Counter(
        frozenset(
            ("-" if literal < 0 else "+") + names[abs(literal)]
            for literal in clause
        )
        for clause in cnf.clauses
    )


PARITY_CASES = [
    (4, 6, EncodingOptions()),
    (3, 5, EncodingOptions(cardinality=CardinalityEncoding.TOTALIZER)),
    (4, 6, EncodingOptions(cardinality=CardinalityEncoding.PAIRWISE)),
    (6, 10, EncodingOptions(max_moves_per_step=1)),
    (4, 8, EncodingOptions(max_moves_per_step=2, forbid_idle_steps=True)),
    (6, 10, EncodingOptions(max_moves_per_step=1, forbid_idle_steps=True,
                            cardinality=CardinalityEncoding.TOTALIZER)),
]


class TestFrameParity:
    """extend_to(K) + assert_final(K) must equal the monolithic encoding."""

    @pytest.mark.parametrize("max_pebbles,num_steps,options", PARITY_CASES)
    def test_one_shot_matches_frozen_monolithic(
        self, fig2_dag, max_pebbles, num_steps, options
    ):
        frozen = _frozen_monolithic_cnf(fig2_dag, max_pebbles, num_steps, options)
        framed = PebblingEncoder(fig2_dag, options=options).encode(
            max_pebbles=max_pebbles, num_steps=num_steps
        )
        assert _named_clauses(framed.cnf) == _named_clauses(frozen)

    @pytest.mark.parametrize("max_pebbles,num_steps,options", PARITY_CASES)
    def test_incremental_growth_matches_frozen_monolithic(
        self, fig2_dag, max_pebbles, num_steps, options
    ):
        # Growing one frame at a time (the incremental solver's usage) must
        # emit exactly the monolithic clause set as well.
        frozen = _frozen_monolithic_cnf(fig2_dag, max_pebbles, num_steps, options)
        encoder = PebblingEncoder(fig2_dag, max_pebbles=max_pebbles, options=options)
        for bound in range(1, num_steps + 1):
            encoder.extend_to(bound)
        encoder.assert_final(num_steps)
        assert _named_clauses(encoder.cnf) == _named_clauses(frozen)

    def test_growth_is_identical_to_one_shot_frames(self, and9_dag):
        # Stronger than parity-up-to-naming: step-by-step growth and a single
        # extend_to produce literally the same clause list and numbering.
        stepwise = PebblingEncoder(and9_dag, max_pebbles=5)
        for bound in range(1, 9):
            stepwise.extend_to(bound)
        oneshot = PebblingEncoder(and9_dag, max_pebbles=5)
        oneshot.extend_to(8)
        assert stepwise.cnf.as_lists() == oneshot.cnf.as_lists()


class TestFrameEngine:
    def test_requires_budget_for_frame_methods(self, fig2_dag):
        encoder = PebblingEncoder(fig2_dag)
        with pytest.raises(PebblingError):
            encoder.extend_to(3)
        with pytest.raises(PebblingError):
            _ = encoder.cnf

    def test_extend_to_is_monotonic_and_idempotent(self, fig2_dag):
        encoder = PebblingEncoder(fig2_dag, max_pebbles=4)
        encoder.extend_to(5)
        size = encoder.cnf.num_clauses
        encoder.extend_to(3)  # below the frontier: no-op
        encoder.extend_to(5)
        assert encoder.cnf.num_clauses == size
        assert encoder.num_steps == 5

    def test_final_guard_is_cached_and_guarded(self, fig2_dag):
        encoder = PebblingEncoder(fig2_dag, max_pebbles=4)
        encoder.extend_to(4)
        guard = encoder.final_guard(4)
        assert encoder.final_guard(4) == guard
        # One guard clause per node, selecting the final configuration.
        guarded = [clause for clause in encoder.cnf.clauses if -guard in clause]
        assert len(guarded) == fig2_dag.num_nodes

    def test_final_guard_beyond_frontier_rejected(self, fig2_dag):
        encoder = PebblingEncoder(fig2_dag, max_pebbles=4)
        encoder.extend_to(2)
        with pytest.raises(PebblingError):
            encoder.final_guard(3)
        with pytest.raises(PebblingError):
            encoder.assert_final(3)

    def test_drain_new_clauses_partitions_the_cnf(self, fig2_dag):
        encoder = PebblingEncoder(fig2_dag, max_pebbles=4)
        first = encoder.drain_new_clauses()
        assert first  # frame 0 + initial units
        encoder.extend_to(2)
        second = encoder.drain_new_clauses()
        assert encoder.drain_new_clauses() == []
        assert first + second == encoder.cnf.clauses

    def test_guarded_query_equivalent_to_units(self, fig2_dag):
        # Assuming the guard must behave exactly like asserting the final
        # configuration: same verdict on a SAT and an UNSAT instance.
        for pebbles, steps, expected in ((4, 6, True), (3, 6, False)):
            encoder = PebblingEncoder(fig2_dag, max_pebbles=pebbles)
            encoder.extend_to(steps)
            guard = encoder.final_guard(steps)
            solver = CdclSolver(encoder.cnf)
            assert solver.solve([guard]).is_sat is expected
            one_shot = PebblingEncoder(fig2_dag).encode(
                max_pebbles=pebbles, num_steps=steps
            )
            assert CdclSolver(one_shot.cnf).solve().is_sat is expected


class TestWeightedEncoding:
    def test_unit_weights_emit_identical_cnf(self, fig2_dag):
        plain = PebblingEncoder(fig2_dag).encode(max_pebbles=4, num_steps=5)
        weighted = PebblingEncoder(
            fig2_dag, options=EncodingOptions(weighted=True)
        ).encode(max_pebbles=4, num_steps=5)
        assert [c.literals for c in weighted.cnf.clauses] == [
            c.literals for c in plain.cnf.clauses
        ]

    def test_weighted_budget_bounds_configuration_weight(self, fig2_dag):
        from repro.sat.cards import weighted_sum_true

        fig2_dag.node("E").weight = 3.0
        encoder = PebblingEncoder(fig2_dag, options=EncodingOptions(weighted=True))
        encoding = encoder.encode(max_pebbles=6, num_steps=8)
        result = CdclSolver(encoding.cnf).solve()
        assert result.is_sat
        weights = [int(fig2_dag.node(node).weight) for node in fig2_dag.nodes()]
        for step in range(encoding.num_steps + 1):
            literals = [
                encoding.variable(node, step) for node in fig2_dag.nodes()
            ]
            assert weighted_sum_true(result.model, literals, weights) <= 6

    def test_weighted_rejects_fractional_node_weights(self, fig2_dag):
        fig2_dag.node("B").weight = 0.5
        with pytest.raises(PebblingError):
            PebblingEncoder(fig2_dag, options=EncodingOptions(weighted=True))

    def test_weighted_comment_tags_the_budget(self, fig2_dag):
        fig2_dag.node("E").weight = 2.0
        encoding = PebblingEncoder(
            fig2_dag, options=EncodingOptions(weighted=True)
        ).encode(max_pebbles=5, num_steps=4)
        assert "weight=5" in encoding.cnf.comments[0]
