"""Tests for the parallel portfolio orchestration layer."""

import concurrent.futures

import pytest

from repro.errors import PebblingError, WorkloadError
from repro.pebbling import (
    PebblingStrategy,
    PortfolioTask,
    minimize_pebbles,
    minimize_pebbles_portfolio,
    run_portfolio,
    tasks_from_suite,
)
from repro.pebbling.portfolio import budget_sweep_tasks
from repro.workloads import load_workload, suite_entries


def _verify_strategy(record):
    """Rebuild and validate the strategy carried by a solved record."""
    dag = load_workload(record.task.workload, scale=record.task.scale)
    configurations = [set(configuration) for configuration in record.configurations]
    strategy = PebblingStrategy(
        dag,
        configurations,
        max_moves_per_step=1 if record.task.single_move else None,
    )
    assert strategy.max_pebbles <= record.task.pebbles
    assert strategy.num_steps == record.steps


class TestTasks:
    def test_tasks_from_suite(self):
        tasks = tasks_from_suite("smoke", time_limit=30)
        assert [task.name for task in tasks] == ["fig2_p4", "c17_p4"]
        assert all(task.time_limit == 30 for task in tasks)

    def test_unknown_suite_rejected(self):
        with pytest.raises(WorkloadError):
            tasks_from_suite("no-such-suite")

    def test_budget_sweep_tasks(self):
        tasks = budget_sweep_tasks("fig2", range(3, 6), time_limit=10)
        assert [task.pebbles for task in tasks] == [3, 4, 5]
        assert all(task.workload == "fig2" for task in tasks)

    def test_task_names_encode_parameters(self):
        assert PortfolioTask("and9", 4, single_move=True).name == "and9_p4_sm"
        assert PortfolioTask("c432", 8, scale=0.25).name == "c432_p8_s0.25"


class TestRunPortfolio:
    def test_jobs_must_be_positive(self):
        with pytest.raises(PebblingError):
            run_portfolio([], jobs=0)

    def test_inline_execution_and_strategy_validity(self):
        records = run_portfolio(tasks_from_suite("smoke", time_limit=30), jobs=1)
        assert [record.outcome for record in records] == ["solution", "solution"]
        for record in records:
            _verify_strategy(record)

    def test_parallel_matches_inline(self):
        tasks = tasks_from_suite("smoke", time_limit=30) + [
            PortfolioTask("fig2", 3, time_limit=30)  # an UNSAT sweep
        ]
        inline = run_portfolio(tasks, jobs=1)
        # force_pool: on a single-core host jobs=2 would silently fall back
        # to inline and this parity test would compare inline to itself.
        pooled = run_portfolio(tasks, jobs=2, force_pool=True)
        assert [record.name for record in pooled] == [record.name for record in inline]
        for one, many in zip(inline, pooled):
            assert one.outcome == many.outcome
            assert one.steps == many.steps
            assert one.pebbles_used == many.pebbles_used

    def test_single_core_host_falls_back_to_inline(self, monkeypatch):
        import repro.pebbling.portfolio as portfolio_module

        monkeypatch.setattr(portfolio_module, "_usable_cores", lambda: 1)

        def _no_pool(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("ProcessPoolExecutor must not be used")

        monkeypatch.setattr(portfolio_module, "ProcessPoolExecutor", _no_pool)
        records = run_portfolio(
            tasks_from_suite("smoke", time_limit=30), jobs=4
        )
        assert [record.outcome for record in records] == ["solution", "solution"]

    def test_multi_core_host_uses_the_pool(self, monkeypatch):
        import repro.pebbling.portfolio as portfolio_module

        monkeypatch.setattr(portfolio_module, "_usable_cores", lambda: 8)
        used = {}

        class _SpyPool:
            def __init__(self, max_workers):
                used["max_workers"] = max_workers

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, function, *args):
                # A real Future: run_portfolio absorbs results through
                # as_completed, which needs the genuine wait machinery.
                future = concurrent.futures.Future()
                future.set_result(function(*args))
                return future

        monkeypatch.setattr(portfolio_module, "ProcessPoolExecutor", _SpyPool)
        records = run_portfolio(
            tasks_from_suite("smoke", time_limit=30), jobs=2
        )
        assert used["max_workers"] == 2
        assert all(record.found for record in records)

    def test_store_path_threads_the_cache_through_tasks(self, tmp_path):
        db = str(tmp_path / "cache.db")
        tasks = tasks_from_suite("smoke", time_limit=30)
        cold = run_portfolio(tasks, jobs=1, store_path=db)
        warm = run_portfolio(tasks, jobs=1, store_path=db)
        for one, two in zip(cold, warm):
            assert one.outcome == two.outcome
            assert one.steps == two.steps
        from repro.store import ResultStore

        with ResultStore(db) as store:
            assert store.stats().total_hits == len(tasks)

    def test_meaningless_schedule_parameters_become_error_records(self):
        # The validation of the search layer reaches portfolio tasks too:
        # a non-linear schedule with a step increment is an error record,
        # not a silently ignored parameter.
        records = run_portfolio(
            [PortfolioTask("fig2", 4, schedule="geometric", step_increment=5,
                           time_limit=5)],
            jobs=1,
        )
        assert records[0].outcome == "error"
        assert "step_increment" in records[0].error

    def test_worker_errors_are_captured(self):
        records = run_portfolio(
            [PortfolioTask("does-not-exist", 4, time_limit=5)], jobs=1
        )
        assert records[0].outcome == "error"
        assert "does-not-exist" in records[0].error

    def test_error_capture_in_pool(self):
        records = run_portfolio(
            [
                PortfolioTask("fig2", 4, time_limit=30),
                PortfolioTask("does-not-exist", 4, time_limit=5),
            ],
            jobs=2,
        )
        assert records[0].outcome == "solution"
        assert records[1].outcome == "error"


class TestBudgetSweep:
    def test_parallel_sweep_matches_sequential_minimum(self, fig2_dag):
        sequential, _ = minimize_pebbles(fig2_dag, timeout_per_budget=30)
        sweep = minimize_pebbles_portfolio(
            "fig2", jobs=2, timeout_per_budget=30, schedule="geometric-refine"
        )
        assert sweep.best is not None
        assert sweep.minimum_pebbles == sequential.strategy.max_pebbles == 4
        # Budgets below the minimum must all have failed.
        for record in sweep.records:
            if record.task.pebbles < sweep.minimum_pebbles:
                assert not record.found

    def test_default_suite_entries_are_well_formed(self):
        for entry in suite_entries("default"):
            load_workload(entry.workload, scale=entry.scale).validate()


class TestWeightedTasks:
    def test_weighted_task_runs_the_weighted_game(self):
        # fig2 has unit weights, so a weighted budget of 4 equals the
        # unweighted 4-pebble search; the record reports the peak weight.
        record = run_portfolio(
            [PortfolioTask("fig2", 4, weighted=True, time_limit=30)]
        )[0]
        assert record.outcome == "solution"
        assert record.weight_used == 4.0
        assert record.name == "fig2_p4_w"
        assert record.as_dict()["weight_used"] == 4.0

    def test_weighted_and_unweighted_tasks_have_distinct_names(self):
        weighted = PortfolioTask("fig2", 4, weighted=True)
        plain = PortfolioTask("fig2", 4)
        assert weighted.name != plain.name

    def test_tasks_from_suite_plumbs_step_increment_and_cardinality(self):
        tasks = tasks_from_suite(
            "smoke", cardinality="totalizer", step_increment=2
        )
        assert all(task.cardinality == "totalizer" for task in tasks)
        assert all(task.step_increment == 2 for task in tasks)

    def test_non_linear_schedule_with_increment_becomes_error_record(self):
        record = run_portfolio(
            [PortfolioTask("fig2", 4, schedule="geometric", step_increment=3,
                           time_limit=10)]
        )[0]
        assert record.outcome == "error"
        assert "step_increment" in record.error


class TestBackendTasks:
    def test_task_carries_backend_spec(self):
        task = PortfolioTask(workload="fig2", pebbles=4, backend="dpll")
        record = run_portfolio([task])[0]
        assert record.found and record.steps == 6
        assert record.backend == "dpll"
        assert record.complete

    def test_backend_spec_survives_pickling(self):
        import pickle

        task = PortfolioTask(workload="fig2", pebbles=4, backend="dpll")
        clone = pickle.loads(pickle.dumps(task))
        assert clone.backend == "dpll"
        assert clone == task

    def test_non_string_backend_rejected_loudly(self):
        from repro.sat.solver import CdclSolver

        with pytest.raises(PebblingError, match="spec"):
            PortfolioTask(workload="fig2", pebbles=4, backend=CdclSolver)

    def test_unknown_backend_becomes_error_record(self):
        task = PortfolioTask(workload="fig2", pebbles=4, backend="bogus")
        record = run_portfolio([task])[0]
        assert record.outcome == "error"
        assert "registered backends" in record.error

    def test_unavailable_backend_becomes_error_record(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAT_EXTERNAL", raising=False)
        task = PortfolioTask(workload="fig2", pebbles=4, backend="external")
        record = run_portfolio([task])[0]
        assert record.outcome == "error"
        assert "not usable on this host" in record.error

    def test_tasks_from_suite_threads_backend(self):
        tasks = tasks_from_suite("smoke", backend="dpll")
        assert all(task.backend == "dpll" for task in tasks)


class TestRaceBackends:
    def test_race_merges_first_complete_result(self):
        tasks = [PortfolioTask(workload="fig2", pebbles=4, time_limit=60.0)]
        records = run_portfolio(tasks, race_backends=["cdcl", "dpll"])
        assert len(records) == 1
        record = records[0]
        assert record.found and record.steps == 6 and record.complete
        assert record.backend in ("cdcl", "dpll")
        assert set(record.race) == {"cdcl", "dpll"}
        # First-winner cancellation: the winning lane completes with the
        # known answer; losing lanes either also finished (inline races
        # run lanes one at a time, so the loser may observe the token
        # before its first SAT call) or were cancelled mid-flight.
        winner_lane = record.race[record.backend]
        assert winner_lane["outcome"] == "solution"
        assert winner_lane["steps"] == 6
        for spec, lane in record.race.items():
            assert lane["outcome"] in ("solution", "cancelled")
            if lane["outcome"] == "cancelled":
                assert spec in record.cancelled
        assert record.as_dict()["cancelled"] == record.cancelled

    def test_race_cancels_losing_lanes_after_first_complete_win(self):
        # Inline execution runs lanes in submission order; the first lane
        # completes, cancels the shared token, and every later lane must
        # stop before paying for a single SAT call.
        tasks = [PortfolioTask(workload="fig2", pebbles=4, time_limit=60.0)]
        records = run_portfolio(tasks, race_backends=["cdcl", "dpll"])
        record = records[0]
        assert record.complete and record.steps == 6
        cancelled = [
            lane for lane in record.race.values() if lane["outcome"] == "cancelled"
        ]
        assert len(cancelled) == 1
        assert all(lane["sat_calls"] == 0 for lane in cancelled)
        assert record.cancelled == ["dpll"]

    def test_race_merge_is_pure_function_of_lanes(self):
        from repro.pebbling.portfolio import PortfolioRecord, _merge_race

        task = PortfolioTask(workload="fig2", pebbles=4)
        timeout_lane = PortfolioRecord(
            task=task, outcome="timeout", runtime=0.1, complete=False
        )
        slow_complete = PortfolioRecord(
            task=task, outcome="solution", steps=6, runtime=5.0, complete=True
        )
        merged = _merge_race(task, ["a", "b"], [timeout_lane, slow_complete])
        assert merged.backend == "b"  # complete beats a faster timeout
        assert merged.steps == 6
        error_lane = PortfolioRecord(task=task, outcome="error", error="boom")
        merged = _merge_race(task, ["a", "b"], [error_lane, timeout_lane])
        assert merged.backend == "b"  # anything beats an error lane
        tie_a = PortfolioRecord(
            task=task, outcome="solution", steps=6, runtime=1.0, complete=True
        )
        tie_b = PortfolioRecord(
            task=task, outcome="solution", steps=6, runtime=1.0, complete=True
        )
        merged = _merge_race(task, ["a", "b"], [tie_a, tie_b])
        assert merged.backend == "a"  # exact ties break by list order

    def test_race_losing_backend_error_does_not_poison(self):
        tasks = [PortfolioTask(workload="fig2", pebbles=4)]
        records = run_portfolio(tasks, race_backends=["bogus", "cdcl"])
        record = records[0]
        assert record.found and record.backend == "cdcl"
        assert record.race["bogus"]["outcome"] == "error"

    def test_race_preserves_task_order(self):
        tasks = [
            PortfolioTask(workload="fig2", pebbles=4),
            PortfolioTask(workload="fig2", pebbles=2),
        ]
        records = run_portfolio(tasks, race_backends=["cdcl", "dpll"])
        assert [record.task.pebbles for record in records] == [4, 2]
        assert records[1].outcome == "infeasible"

    def test_race_empty_backend_list_rejected(self):
        with pytest.raises(PebblingError, match="at least one backend"):
            run_portfolio(
                [PortfolioTask(workload="fig2", pebbles=4)], race_backends=[]
            )

    def test_race_rows_report_backend(self):
        tasks = [PortfolioTask(workload="fig2", pebbles=4)]
        row = run_portfolio(tasks, race_backends=["cdcl"])[0].as_dict()
        assert row["backend"] == "cdcl"
        assert "race" in row

    def test_race_lanes_bypass_the_store(self, tmp_path):
        # The store's content addresses are backend-invariant, so raced
        # lanes must not share it: a pre-warmed cache would answer every
        # lane without solving and the "race" would compare SQLite reads.
        from repro.store import ResultStore
        from repro.workloads import load_workload
        from repro.pebbling.solver import ReversiblePebblingSolver

        db = str(tmp_path / "race.db")
        with ResultStore(db) as store:
            ReversiblePebblingSolver(load_workload("fig2")).solve(
                4, time_limit=60, store=store
            )
        tasks = [PortfolioTask(workload="fig2", pebbles=4, time_limit=60.0)]
        records = run_portfolio(
            tasks, store_path=db, race_backends=["cdcl", "dpll"]
        )
        record = records[0]
        ran = 0
        for spec, lane in record.race.items():
            if lane["outcome"] == "cancelled":
                continue  # stopped by the winner before touching a solver
            assert lane["produced_by"] == spec, "lane answered from cache"
            assert lane["sat_calls"] > 0, "lane never ran a solver"
            ran += 1
        assert ran >= 1

    def test_race_prefers_partial_solution_over_empty_timeout(self):
        from repro.pebbling.portfolio import PortfolioRecord, _merge_race

        task = PortfolioTask(workload="fig2", pebbles=4)
        empty_fast = PortfolioRecord(
            task=task, outcome="timeout", runtime=1.0, complete=False
        )
        witness_slow = PortfolioRecord(
            task=task, outcome="solution", steps=10, runtime=2.0, complete=False
        )
        merged = _merge_race(task, ["a", "b"], [empty_fast, witness_slow])
        assert merged.backend == "b"
        assert merged.outcome == "solution" and merged.steps == 10
