"""Tests for the parallel portfolio orchestration layer."""

import pytest

from repro.errors import PebblingError, WorkloadError
from repro.pebbling import (
    PebblingStrategy,
    PortfolioTask,
    minimize_pebbles,
    minimize_pebbles_portfolio,
    run_portfolio,
    tasks_from_suite,
)
from repro.pebbling.portfolio import budget_sweep_tasks
from repro.workloads import load_workload, suite_entries


def _verify_strategy(record):
    """Rebuild and validate the strategy carried by a solved record."""
    dag = load_workload(record.task.workload, scale=record.task.scale)
    configurations = [set(configuration) for configuration in record.configurations]
    strategy = PebblingStrategy(
        dag,
        configurations,
        max_moves_per_step=1 if record.task.single_move else None,
    )
    assert strategy.max_pebbles <= record.task.pebbles
    assert strategy.num_steps == record.steps


class TestTasks:
    def test_tasks_from_suite(self):
        tasks = tasks_from_suite("smoke", time_limit=30)
        assert [task.name for task in tasks] == ["fig2_p4", "c17_p4"]
        assert all(task.time_limit == 30 for task in tasks)

    def test_unknown_suite_rejected(self):
        with pytest.raises(WorkloadError):
            tasks_from_suite("no-such-suite")

    def test_budget_sweep_tasks(self):
        tasks = budget_sweep_tasks("fig2", range(3, 6), time_limit=10)
        assert [task.pebbles for task in tasks] == [3, 4, 5]
        assert all(task.workload == "fig2" for task in tasks)

    def test_task_names_encode_parameters(self):
        assert PortfolioTask("and9", 4, single_move=True).name == "and9_p4_sm"
        assert PortfolioTask("c432", 8, scale=0.25).name == "c432_p8_s0.25"


class TestRunPortfolio:
    def test_jobs_must_be_positive(self):
        with pytest.raises(PebblingError):
            run_portfolio([], jobs=0)

    def test_inline_execution_and_strategy_validity(self):
        records = run_portfolio(tasks_from_suite("smoke", time_limit=30), jobs=1)
        assert [record.outcome for record in records] == ["solution", "solution"]
        for record in records:
            _verify_strategy(record)

    def test_parallel_matches_inline(self):
        tasks = tasks_from_suite("smoke", time_limit=30) + [
            PortfolioTask("fig2", 3, time_limit=30)  # an UNSAT sweep
        ]
        inline = run_portfolio(tasks, jobs=1)
        # force_pool: on a single-core host jobs=2 would silently fall back
        # to inline and this parity test would compare inline to itself.
        pooled = run_portfolio(tasks, jobs=2, force_pool=True)
        assert [record.name for record in pooled] == [record.name for record in inline]
        for one, many in zip(inline, pooled):
            assert one.outcome == many.outcome
            assert one.steps == many.steps
            assert one.pebbles_used == many.pebbles_used

    def test_single_core_host_falls_back_to_inline(self, monkeypatch):
        import repro.pebbling.portfolio as portfolio_module

        monkeypatch.setattr(portfolio_module, "_usable_cores", lambda: 1)

        def _no_pool(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("ProcessPoolExecutor must not be used")

        monkeypatch.setattr(portfolio_module, "ProcessPoolExecutor", _no_pool)
        records = run_portfolio(
            tasks_from_suite("smoke", time_limit=30), jobs=4
        )
        assert [record.outcome for record in records] == ["solution", "solution"]

    def test_multi_core_host_uses_the_pool(self, monkeypatch):
        import repro.pebbling.portfolio as portfolio_module

        monkeypatch.setattr(portfolio_module, "_usable_cores", lambda: 8)
        used = {}

        class _SpyPool:
            def __init__(self, max_workers):
                used["max_workers"] = max_workers

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, function, *args):
                class _Future:
                    @staticmethod
                    def result():
                        return function(*args)

                return _Future()

        monkeypatch.setattr(portfolio_module, "ProcessPoolExecutor", _SpyPool)
        records = run_portfolio(
            tasks_from_suite("smoke", time_limit=30), jobs=2
        )
        assert used["max_workers"] == 2
        assert all(record.found for record in records)

    def test_store_path_threads_the_cache_through_tasks(self, tmp_path):
        db = str(tmp_path / "cache.db")
        tasks = tasks_from_suite("smoke", time_limit=30)
        cold = run_portfolio(tasks, jobs=1, store_path=db)
        warm = run_portfolio(tasks, jobs=1, store_path=db)
        for one, two in zip(cold, warm):
            assert one.outcome == two.outcome
            assert one.steps == two.steps
        from repro.store import ResultStore

        with ResultStore(db) as store:
            assert store.stats().total_hits == len(tasks)

    def test_meaningless_schedule_parameters_become_error_records(self):
        # The validation of the search layer reaches portfolio tasks too:
        # a non-linear schedule with a step increment is an error record,
        # not a silently ignored parameter.
        records = run_portfolio(
            [PortfolioTask("fig2", 4, schedule="geometric", step_increment=5,
                           time_limit=5)],
            jobs=1,
        )
        assert records[0].outcome == "error"
        assert "step_increment" in records[0].error

    def test_worker_errors_are_captured(self):
        records = run_portfolio(
            [PortfolioTask("does-not-exist", 4, time_limit=5)], jobs=1
        )
        assert records[0].outcome == "error"
        assert "does-not-exist" in records[0].error

    def test_error_capture_in_pool(self):
        records = run_portfolio(
            [
                PortfolioTask("fig2", 4, time_limit=30),
                PortfolioTask("does-not-exist", 4, time_limit=5),
            ],
            jobs=2,
        )
        assert records[0].outcome == "solution"
        assert records[1].outcome == "error"


class TestBudgetSweep:
    def test_parallel_sweep_matches_sequential_minimum(self, fig2_dag):
        sequential, _ = minimize_pebbles(fig2_dag, timeout_per_budget=30)
        sweep = minimize_pebbles_portfolio(
            "fig2", jobs=2, timeout_per_budget=30, schedule="geometric-refine"
        )
        assert sweep.best is not None
        assert sweep.minimum_pebbles == sequential.strategy.max_pebbles == 4
        # Budgets below the minimum must all have failed.
        for record in sweep.records:
            if record.task.pebbles < sweep.minimum_pebbles:
                assert not record.found

    def test_default_suite_entries_are_well_formed(self):
        for entry in suite_entries("default"):
            load_workload(entry.workload, scale=entry.scale).validate()


class TestWeightedTasks:
    def test_weighted_task_runs_the_weighted_game(self):
        # fig2 has unit weights, so a weighted budget of 4 equals the
        # unweighted 4-pebble search; the record reports the peak weight.
        record = run_portfolio(
            [PortfolioTask("fig2", 4, weighted=True, time_limit=30)]
        )[0]
        assert record.outcome == "solution"
        assert record.weight_used == 4.0
        assert record.name == "fig2_p4_w"
        assert record.as_dict()["weight_used"] == 4.0

    def test_weighted_and_unweighted_tasks_have_distinct_names(self):
        weighted = PortfolioTask("fig2", 4, weighted=True)
        plain = PortfolioTask("fig2", 4)
        assert weighted.name != plain.name

    def test_tasks_from_suite_plumbs_step_increment_and_cardinality(self):
        tasks = tasks_from_suite(
            "smoke", cardinality="totalizer", step_increment=2
        )
        assert all(task.cardinality == "totalizer" for task in tasks)
        assert all(task.step_increment == 2 for task in tasks)

    def test_non_linear_schedule_with_increment_becomes_error_record(self):
        record = run_portfolio(
            [PortfolioTask("fig2", 4, schedule="geometric", step_increment=3,
                           time_limit=10)]
        )[0]
        assert record.outcome == "error"
        assert "step_increment" in record.error
