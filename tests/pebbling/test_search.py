"""Tests for the pluggable step-bound search strategies."""

import pytest

from repro.errors import PebblingError
from repro.pebbling import (
    EncodingOptions,
    PebblingOutcome,
    GeometricRefine,
    GeometricSearch,
    LinearSearch,
    ReversiblePebblingSolver,
    StripedClimb,
    minimize_pebbles,
    pebble_dag,
    strategy_from_name,
)
from repro.pebbling.search import resolve_search_strategy


def _drive(cursor, oracle):
    """Run a cursor against a ``bound -> bool`` oracle; return the queries."""
    queries = []
    bound = cursor.bound
    for _ in range(100):
        queries.append(bound)
        bound = cursor.advance(oracle(bound))
        if bound is None:
            return queries
    raise AssertionError("cursor did not terminate")


class TestCursors:
    def test_linear_cursor_sequence(self):
        cursor = LinearSearch(step_increment=2).start(3, 3)
        assert _drive(cursor, lambda bound: bound >= 9) == [3, 5, 7, 9]

    def test_geometric_cursor_sequence(self):
        cursor = GeometricSearch(factor=1.5).start(4, 4)
        assert _drive(cursor, lambda bound: bound >= 13) == [4, 6, 9, 13]

    def test_geometric_refine_finds_exact_minimum(self):
        # Minimal K is 10; the cursor must overshoot then close the bracket.
        cursor = GeometricRefine(factor=1.5).start(3, 3)
        queries = _drive(cursor, lambda bound: bound >= 10)
        assert queries[-1] != 10 or queries.count(10) >= 1
        sat_queries = [bound for bound in queries if bound >= 10]
        assert min(sat_queries) == 10  # the minimum was certified SAT
        unsat_nine = [bound for bound in queries if bound == 9]
        assert unsat_nine or 9 < min(queries)  # ... and 9 certified UNSAT

    @pytest.mark.parametrize("minimum", [1, 2, 5, 17, 40])
    @pytest.mark.parametrize("initial", [1, 3, 10])
    def test_geometric_refine_always_certifies_minimum(self, minimum, initial):
        cursor = GeometricRefine().start(initial, min(initial, 1))
        queries = _drive(cursor, lambda bound: bound >= minimum)
        if initial <= minimum:
            assert minimum in queries
            if minimum > 1 and initial < minimum:
                assert minimum - 1 in queries
        else:
            # Started above the minimum: refine down to the floor bracket.
            assert min(bound for bound in queries if bound >= minimum) == minimum

    def test_geometric_refine_uses_fewer_queries_than_linear(self):
        linear = _drive(LinearSearch().start(3, 3), lambda bound: bound >= 40)
        refine = _drive(GeometricRefine().start(3, 3), lambda bound: bound >= 40)
        assert len(refine) < len(linear)


class TestStripedClimb:
    def test_lanes_aim_at_distinct_rungs(self):
        # For any fixed frontier the four stripe offsets are a permutation
        # of the next four rungs — the team never aims twice at one rung.
        for frontier in range(1, 9):
            aims = {
                StripedClimb(lane=lane, lanes=4).start(frontier, frontier).bound
                for lane in range(4)
            }
            assert aims == set(range(frontier, frontier + 4))

    def test_each_lane_alone_still_certifies(self):
        # Driven without siblings a lane eventually probes every rung of
        # its stripe, brackets the minimum, and closes on it exactly.
        for lane in range(4):
            cursor = StripedClimb(lane=lane, lanes=4).start(3, 3)
            queries = _drive(cursor, lambda bound: bound >= 11)
            assert 11 in queries  # SAT at the minimum
            assert 10 in queries  # UNSAT right below it
            assert cursor.checkpoint() == {
                "next_bound": queries[-1],
                "refuted_through": 10,
                "known_sat": 11,
            }

    def test_external_facts_clamp_and_close_the_bracket(self):
        cursor = StripedClimb(lane=0, lanes=4).start(9, 9)
        bound = cursor.observe(refuted=14, known_sat=17)
        assert bound is not None and 15 <= bound <= 16
        assert cursor.observe(refuted=14, known_sat=17) == bound  # idempotent
        assert cursor.observe(refuted=16, known_sat=17) is None

    def test_witness_above_own_bound_keeps_probing_below(self):
        cursor = StripedClimb(lane=1, lanes=4).start(5, 5)
        first = cursor.bound
        assert cursor.observe(known_sat=first + 1) == first

    def test_unsat_at_ceiling_exhausts(self):
        cursor = StripedClimb(lane=0, lanes=2).start(5, 5, 6)
        assert cursor.bound <= 6
        assert cursor.advance_core(False, 6) is None

    def test_striped_parameters_validated(self):
        with pytest.raises(PebblingError):
            StripedClimb(lane=4, lanes=4)
        with pytest.raises(PebblingError):
            StripedClimb(lane=0, lanes=0)

    def test_striped_flags_and_signature(self):
        strategy = StripedClimb(lane=2, lanes=4)
        assert strategy.certifies_minimality
        assert strategy.needs_monotone_steps
        assert strategy.signature == "striped:2/4"


class TestValidation:
    def test_linear_increment_validated(self):
        with pytest.raises(PebblingError):
            LinearSearch(step_increment=0)

    @pytest.mark.parametrize("factory", [GeometricSearch, GeometricRefine])
    def test_geometric_factor_validated(self, factory):
        with pytest.raises(PebblingError):
            factory(factor=1.0)

    def test_unknown_name_rejected(self):
        with pytest.raises(PebblingError):
            strategy_from_name("sideways")

    def test_step_increment_rejected_for_non_linear_names(self):
        with pytest.raises(PebblingError):
            strategy_from_name("geometric", step_increment=2)
        with pytest.raises(PebblingError):
            strategy_from_name("geometric-refine", step_increment=3)

    def test_resolve_rejects_conflicting_arguments(self):
        with pytest.raises(PebblingError):
            resolve_search_strategy("linear", step_schedule="linear")
        with pytest.raises(PebblingError):
            resolve_search_strategy(LinearSearch(), step_increment=2)

    def test_resolve_defaults_to_linear(self):
        strategy = resolve_search_strategy(None)
        assert isinstance(strategy, LinearSearch)
        assert strategy.step_increment == 1

    def test_solver_rejects_geometric_with_step_increment(self, fig2_dag):
        solver = ReversiblePebblingSolver(fig2_dag)
        with pytest.raises(PebblingError):
            solver.solve(4, step_schedule="geometric", step_increment=2)


class TestSolverIntegration:
    @pytest.mark.parametrize("incremental", [True, False])
    def test_refine_matches_linear_minimum(self, fig2_dag, incremental):
        linear = ReversiblePebblingSolver(fig2_dag, incremental=incremental).solve(
            4, time_limit=60
        )
        refine = ReversiblePebblingSolver(fig2_dag, incremental=incremental).solve(
            4, time_limit=60, strategy="geometric-refine"
        )
        assert linear.found and refine.found
        assert refine.num_steps == linear.num_steps
        assert refine.strategy.max_pebbles <= 4

    def test_refine_matches_linear_on_and9(self, and9_dag):
        linear = pebble_dag(and9_dag, 5, time_limit=60)
        refine = pebble_dag(and9_dag, 5, time_limit=60, strategy=GeometricRefine())
        assert linear.found and refine.found
        assert refine.num_steps == linear.num_steps
        assert len(refine.attempts) <= len(linear.attempts)

    @pytest.mark.parametrize("incremental", [True, False])
    def test_refine_rejected_with_forbidden_idle_steps(self, fig2_dag, incremental):
        # Forbidding idle steps makes step-satisfiability non-monotone in K
        # (e.g. single-move strategies fix the parity of K), which breaks
        # the bracket refinement's soundness — the combination must raise.
        options = EncodingOptions(max_moves_per_step=1, forbid_idle_steps=True)
        solver = ReversiblePebblingSolver(
            fig2_dag, options=options, incremental=incremental
        )
        with pytest.raises(PebblingError, match="geometric-refine"):
            solver.solve(6, time_limit=120, strategy="geometric-refine")
        # The linear schedule still certifies the single-move minimum.
        linear = solver.solve(6, time_limit=120)
        assert linear.found and linear.num_steps == 10

    def test_refine_growth_clamped_to_max_steps(self, fig2_dag):
        # Minimal K is 6; geometric growth from 4 would probe 4, 6, ... so a
        # budget of exactly 6 must not be jumped over, and a budget of 5
        # must be *proved* infeasible by the UNSAT answer at the ceiling.
        found = pebble_dag(
            fig2_dag, 4, time_limit=60, strategy="geometric-refine",
            initial_steps=3, max_steps=6,
        )
        assert found.found and found.num_steps == 6 and found.complete
        exhausted = pebble_dag(
            fig2_dag, 4, time_limit=60, strategy="geometric-refine",
            initial_steps=3, max_steps=5,
        )
        assert exhausted.outcome is PebblingOutcome.STEP_LIMIT
        assert exhausted.complete

    def test_complete_flag_reflects_time_cut(self, fig2_dag):
        full = pebble_dag(fig2_dag, 4, time_limit=60)
        assert full.found and full.complete
        assert full.summary()["complete"] is True
        cut = pebble_dag(fig2_dag, 3, max_steps=40, time_limit=0.0)
        assert cut.outcome is PebblingOutcome.TIMEOUT
        assert not cut.complete

    def test_infeasible_budget_is_complete(self, fig2_dag):
        result = pebble_dag(fig2_dag, 1)
        assert result.outcome is PebblingOutcome.INFEASIBLE
        assert result.complete

    def test_refine_certifies_minimum_from_overshot_hint(self, fig2_dag):
        # A warm-start hint above the true minimum: linear stops at the hint,
        # refine searches back down below it.
        refine = pebble_dag(
            fig2_dag, 4, time_limit=60, strategy="geometric-refine", initial_steps=9
        )
        assert refine.found
        assert refine.num_steps == 6

    def test_minimize_pebbles_accepts_strategy_objects(self, fig2_dag):
        best, _ = minimize_pebbles(
            fig2_dag, timeout_per_budget=30, strategy=GeometricRefine()
        )
        assert best is not None
        assert best.strategy.max_pebbles == 4

    def test_strategies_are_reusable_across_searches(self, fig2_dag):
        strategy = GeometricRefine()
        first = pebble_dag(fig2_dag, 4, time_limit=30, strategy=strategy)
        second = pebble_dag(fig2_dag, 4, time_limit=30, strategy=strategy)
        assert first.num_steps == second.num_steps == 6


def _drive_core(cursor, oracle, minimum):
    """Drive a core-aware cursor; the oracle refutes the whole ladder.

    ``oracle`` is the plain ``bound -> bool`` SAT oracle; on UNSAT the
    strongest refuted ladder bound below ``minimum`` is reported, which is
    exactly what a perfect failed-assumption core would certify.
    """
    queries = []
    bound = cursor.bound
    for _ in range(100):
        queries.append(bound)
        ladder = cursor.ladder()
        assert ladder[0] == bound
        assert ladder == sorted(ladder)
        if oracle(bound):
            bound = cursor.advance_core(True)
        else:
            refuted = max(step for step in ladder if step < minimum)
            bound = cursor.advance_core(False, refuted)
        if bound is None:
            return queries
    raise AssertionError("cursor did not terminate")


class TestCoreAwareCursors:
    def test_plain_cursors_expose_single_bound_ladder(self):
        assert LinearSearch().start(3, 3).ladder() == [3]
        assert GeometricRefine().start(3, 3).ladder() == [3]

    def test_linear_core_ladder_and_fast_forward(self):
        cursor = LinearSearch(core_lookahead=3).start(2, 2)
        assert cursor.ladder() == [2, 3, 4, 5]
        # The core refutes up to bound 4: the next probe skips 3 and 4.
        assert cursor.advance_core(False, 4) == 5
        assert cursor.advance_core(True) is None

    def test_linear_core_ladder_clamped_to_ceiling(self):
        cursor = LinearSearch(core_lookahead=10).start(2, 2, 5)
        assert cursor.ladder() == [2, 3, 4, 5]

    def test_linear_core_finds_same_minimum(self):
        for minimum in (1, 4, 9, 23):
            plain = _drive(LinearSearch().start(1, 1), lambda b: b >= minimum)
            fast = _drive_core(
                LinearSearch(core_lookahead=4).start(1, 1),
                lambda b: b >= minimum,
                minimum,
            )
            assert plain[-1] == fast[-1] == minimum
            assert len(fast) <= len(plain)

    def test_core_refine_ladder_spans_bracket(self):
        cursor = GeometricRefine(core_guided=True, core_lookahead=2).start(3, 3)
        assert cursor.ladder() == [3, 4, 5]  # overshoot: lookahead-wide
        cursor.advance_core(True)  # SAT at 3 -> bracket [3, 3) closed
        cursor2 = GeometricRefine(core_guided=True).start(4, 2)
        bound = cursor2.advance_core(True)  # SAT at 4: refine [2, 4)
        assert bound == 3
        assert cursor2.ladder() == [3]  # bracket interior only

    def test_core_refine_bracket_tightens_from_core(self):
        # Minimum is 9.  Overshoot 3 -> 6 (core refutes through 5) -> 9 SAT;
        # the bracket is then [6+1?..] — core said 5, so lo = 6... probe 7, 8.
        cursor = GeometricRefine(core_guided=True, core_lookahead=4).start(3, 3)
        queries = _drive_core(cursor, lambda b: b >= 9, 9)
        plain = _drive(GeometricRefine().start(3, 3), lambda b: b >= 9)
        assert queries[-1] == plain[-1] == 9 or 9 in queries
        assert min(q for q in queries if q >= 9) == 9
        assert len(queries) <= len(plain)

    @pytest.mark.parametrize("minimum", [1, 2, 5, 17, 40])
    @pytest.mark.parametrize("initial", [1, 3, 10])
    def test_core_refine_always_certifies_minimum(self, minimum, initial):
        cursor = GeometricRefine(core_guided=True).start(initial, min(initial, 1))
        queries = _drive_core(cursor, lambda b: b >= minimum, minimum)
        if initial <= minimum:
            assert minimum in queries
        assert min(q for q in queries if q >= minimum) == minimum

    def test_core_refine_ceiling_cut(self):
        cursor = GeometricRefine(core_guided=True).start(3, 3, 6)
        assert cursor.ladder() == [3, 4, 5, 6]
        assert cursor.advance_core(False, 6) is None  # core refuted the ceiling


class TestCoreStrategyConfiguration:
    def test_named_core_schedules_resolve(self):
        fast = strategy_from_name("linear-core")
        assert isinstance(fast, LinearSearch) and fast.core_lookahead > 0
        refine = strategy_from_name("core-refine")
        assert isinstance(refine, GeometricRefine) and refine.core_guided

    def test_signatures_distinguish_core_variants(self):
        assert LinearSearch().signature != LinearSearch(core_lookahead=4).signature
        assert (
            GeometricRefine().signature
            != GeometricRefine(core_guided=True).signature
        )

    def test_core_variants_certify_minimality(self):
        assert strategy_from_name("linear-core").certifies_minimality
        assert strategy_from_name("core-refine").certifies_minimality

    def test_monotonicity_requirements(self):
        assert not LinearSearch().needs_monotone_steps
        assert LinearSearch(core_lookahead=1).needs_monotone_steps
        assert GeometricRefine().needs_monotone_steps
        assert strategy_from_name("core-refine").needs_monotone_steps

    def test_negative_lookahead_rejected(self):
        with pytest.raises(PebblingError):
            LinearSearch(core_lookahead=-1)
        with pytest.raises(PebblingError):
            GeometricRefine(core_lookahead=-2)

    def test_linear_core_accepts_step_increment(self):
        strategy = strategy_from_name("linear-core", step_increment=2)
        assert strategy.step_increment == 2
        assert not strategy.certifies_minimality
