"""Tests for the Bennett and eager-Bennett baseline strategies."""

import pytest

from repro.errors import PebblingError
from repro.dag import Dag
from repro.pebbling import bennett_strategy, eager_bennett_strategy
from repro.workloads import and_tree_dag


class TestBennett:
    def test_fig2_matches_paper_numbers(self, fig2_dag):
        strategy = bennett_strategy(fig2_dag)
        # Section II-B: 6 pebbles (= number of nodes) and 10 steps.
        assert strategy.max_pebbles == 6
        assert strategy.num_moves == 10
        assert strategy.num_steps == 10

    def test_move_count_formula(self, fig2_dag, chain_dag, diamond_dag):
        for dag in (fig2_dag, chain_dag, diamond_dag):
            strategy = bennett_strategy(dag)
            assert strategy.num_moves == 2 * dag.num_nodes - len(dag.outputs())
            assert strategy.max_pebbles == dag.num_nodes

    def test_every_node_computed_exactly_once(self, fig2_dag):
        counts = bennett_strategy(fig2_dag).compute_counts()
        assert all(count == 1 for count in counts.values())

    def test_and9_matches_fig6_gate_count(self, and9_dag):
        # Fig. 6(b): 15 gates, 8 ancillae (17 qubits with the 9 inputs).
        strategy = bennett_strategy(and9_dag)
        assert strategy.num_moves == 15
        assert strategy.max_pebbles == 8

    def test_custom_order(self, fig2_dag):
        order = ["B", "D", "A", "C", "F", "E"]
        strategy = bennett_strategy(fig2_dag, order=order)
        assert strategy.max_pebbles == 6
        assert strategy.num_moves == 10

    def test_non_topological_order_rejected(self, fig2_dag):
        with pytest.raises(PebblingError):
            bennett_strategy(fig2_dag, order=["C", "A", "B", "D", "E", "F"])

    def test_order_must_be_a_permutation(self, fig2_dag):
        with pytest.raises(PebblingError):
            bennett_strategy(fig2_dag, order=["A", "B"])


class TestEagerBennett:
    def test_same_move_count_as_bennett(self, fig2_dag, and9_dag):
        for dag in (fig2_dag, and9_dag):
            assert eager_bennett_strategy(dag).num_moves == bennett_strategy(dag).num_moves

    def test_never_uses_more_pebbles_than_bennett(self, fig2_dag, and9_dag, diamond_dag):
        for dag in (fig2_dag, and9_dag, diamond_dag):
            assert (
                eager_bennett_strategy(dag).max_pebbles
                <= bennett_strategy(dag).max_pebbles
            )

    def test_saves_pebbles_when_outputs_finish_early(self):
        """A DAG where one output is computed long before the end: its cone
        can be released early, which plain Bennett never does."""
        dag = Dag("early_output")
        dag.add_node("a", [])
        dag.add_node("early", ["a"])          # output computed early
        dag.add_node("b", [])
        dag.add_node("c", ["b"])
        dag.add_node("d", ["c"])
        dag.add_node("late", ["d"])           # output computed last
        dag.set_outputs(["early", "late"])
        plain = bennett_strategy(dag)
        eager = eager_bennett_strategy(dag)
        assert eager.num_moves == plain.num_moves
        assert eager.max_pebbles < plain.max_pebbles

    def test_every_node_computed_exactly_once(self, and9_dag):
        counts = eager_bennett_strategy(and9_dag).compute_counts()
        assert all(count == 1 for count in counts.values())

    def test_chain_behaves_like_bennett(self, chain_dag):
        # On a chain nothing can be released early.
        assert eager_bennett_strategy(chain_dag).max_pebbles == chain_dag.num_nodes

    def test_wide_and_tree_savings(self):
        """On a large balanced AND tree the eager variant saves pebbles."""
        dag = and_tree_dag(17)
        plain = bennett_strategy(dag)
        eager = eager_bennett_strategy(dag)
        assert eager.max_pebbles <= plain.max_pebbles
