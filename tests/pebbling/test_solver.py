"""Tests for the SAT-driven reversible pebbling solver."""

import pytest

from repro.errors import PebblingError
from repro.dag import Dag, linear_chain
from repro.sat.solver import CdclSolver
from repro.pebbling import (
    EncodingOptions,
    PebblingOutcome,
    ReversiblePebblingSolver,
    bennett_strategy,
    minimize_pebbles,
    pebble_dag,
)


class TestProblemOne:
    def test_fig2_with_four_pebbles(self, fig2_dag):
        result = pebble_dag(fig2_dag, 4, time_limit=60)
        assert result.found
        assert result.outcome is PebblingOutcome.SOLUTION
        assert result.strategy.max_pebbles <= 4
        # The paper's example needs recomputation below 5 pebbles.
        assert result.num_moves > bennett_strategy(fig2_dag).num_moves

    def test_fig2_with_enough_pebbles_matches_bennett_moves(self, fig2_dag):
        result = pebble_dag(fig2_dag, 6, time_limit=60)
        assert result.found
        assert result.num_moves == bennett_strategy(fig2_dag).num_moves

    def test_single_move_mode_reproduces_fig4_step_count(self, fig2_dag):
        options = EncodingOptions(max_moves_per_step=1)
        result = pebble_dag(fig2_dag, 6, options=options, time_limit=120)
        assert result.found
        # Fig. 4 (left): the Bennett strategy needs 10 single-move steps, and
        # that is also the minimum.
        assert result.num_steps == 10

    def test_single_move_mode_with_four_pebbles(self, fig2_dag):
        options = EncodingOptions(max_moves_per_step=1)
        result = pebble_dag(fig2_dag, 4, options=options, time_limit=120)
        assert result.found
        assert result.strategy.max_pebbles <= 4
        # The paper's Fig. 4 (right) example uses 14 steps; the solver may do
        # better but can never beat the Bennett lower bound of 10.
        assert 10 <= result.num_steps <= 14

    def test_and9_with_seven_pebbles_matches_fig6(self, and9_dag):
        result = pebble_dag(and9_dag, 7, time_limit=120)
        assert result.found
        # Fig. 6(c): 16 qubits = 9 inputs + 7 ancillae, 23 gates.
        assert result.strategy.max_pebbles <= 7
        assert result.num_moves <= 23

    def test_infeasible_budget_detected_without_sat_call(self, fig2_dag):
        result = pebble_dag(fig2_dag, 1)
        assert result.outcome is PebblingOutcome.INFEASIBLE
        assert result.attempts == []

    def test_impossible_budget_hits_step_limit(self, fig2_dag):
        # Three pebbles satisfy the structural lower bound but no strategy
        # exists; the solver must exhaust its step budget and say so.
        result = pebble_dag(fig2_dag, 3, max_steps=12, time_limit=60)
        assert result.outcome is PebblingOutcome.STEP_LIMIT
        assert not result.found

    def test_timeout_is_respected(self):
        dag = linear_chain(30, name="slow_chain")
        result = pebble_dag(dag, 4, time_limit=0.2)
        assert result.outcome in (PebblingOutcome.TIMEOUT, PebblingOutcome.STEP_LIMIT,
                                  PebblingOutcome.SOLUTION)
        assert result.runtime < 10

    def test_attempt_records_are_kept(self, fig2_dag):
        result = pebble_dag(fig2_dag, 4, time_limit=60)
        assert result.attempts
        assert all(record.max_pebbles == 4 for record in result.attempts)
        # The last attempt is the satisfiable one.
        assert result.attempts[-1].status.value == "sat"

    def test_summary_fields(self, fig2_dag):
        summary = pebble_dag(fig2_dag, 4, time_limit=60).summary()
        assert summary["dag"] == fig2_dag.name
        assert summary["max_pebbles"] == 4
        assert summary["outcome"] == "solution"
        assert summary["moves"] >= 10

    def test_invalid_arguments_rejected(self, fig2_dag):
        solver = ReversiblePebblingSolver(fig2_dag)
        with pytest.raises(PebblingError):
            solver.solve(0)
        with pytest.raises(PebblingError):
            solver.solve(4, step_increment=0)
        with pytest.raises(PebblingError):
            solver.solve(4, step_schedule="sideways")

    def test_geometric_schedule_finds_solutions(self, fig2_dag):
        result = pebble_dag(fig2_dag, 4, time_limit=60, step_schedule="geometric")
        assert result.found
        assert result.strategy.max_pebbles <= 4

    def test_geometric_schedule_uses_fewer_sat_calls(self, and9_dag):
        linear = pebble_dag(and9_dag, 7, time_limit=60)
        geometric = pebble_dag(and9_dag, 7, time_limit=60, step_schedule="geometric")
        assert linear.found and geometric.found
        assert len(geometric.attempts) <= len(linear.attempts)

    def test_non_incremental_agrees_with_incremental(self, fig2_dag):
        incremental = ReversiblePebblingSolver(fig2_dag, incremental=True).solve(
            4, time_limit=60
        )
        monolithic = ReversiblePebblingSolver(fig2_dag, incremental=False).solve(
            4, time_limit=60
        )
        assert incremental.found and monolithic.found
        assert incremental.strategy.max_pebbles <= 4
        assert monolithic.strategy.max_pebbles <= 4
        assert incremental.num_steps == monolithic.num_steps


class TestSolverInjection:
    def test_solver_factory_is_used(self, fig2_dag):
        created = []

        def factory(*args, **kwargs):
            solver = CdclSolver(*args, **kwargs)
            created.append(solver)
            return solver

        result = ReversiblePebblingSolver(
            fig2_dag, solver_factory=factory
        ).solve(4, time_limit=30)
        assert result.found
        assert created  # the injected factory built the SAT engine

    def test_attempts_carry_solver_stats(self, fig2_dag):
        result = ReversiblePebblingSolver(fig2_dag).solve(4, time_limit=30)
        assert result.attempts
        for record in result.attempts:
            assert record.solver_stats["propagations"] > 0
            assert record.solver_stats["conflicts"] == record.conflicts

    def test_incremental_sweep_disables_stale_guards(self, fig2_dag):
        # An all-UNSAT sweep asserts -guard after every bound; the solver
        # must stay sound and report the same outcome as re-encoding from
        # scratch each time.
        incremental = ReversiblePebblingSolver(fig2_dag, incremental=True).solve(
            3, max_steps=20, time_limit=60
        )
        monolithic = ReversiblePebblingSolver(fig2_dag, incremental=False).solve(
            3, max_steps=20, time_limit=60
        )
        assert incremental.outcome == monolithic.outcome
        assert [record.status for record in incremental.attempts] == \
            [record.status for record in monolithic.attempts]


class TestBounds:
    def test_minimum_pebbles_lower_bound(self, fig2_dag, and9_dag):
        assert ReversiblePebblingSolver(fig2_dag).minimum_pebbles_lower_bound() >= 3
        assert ReversiblePebblingSolver(and9_dag).minimum_pebbles_lower_bound() >= 3

    def test_default_initial_steps_single_move(self, fig2_dag):
        solver = ReversiblePebblingSolver(
            fig2_dag, options=EncodingOptions(max_moves_per_step=1)
        )
        assert solver.default_initial_steps(max_pebbles=6) == 10

    def test_default_initial_steps_multi_move(self, fig2_dag):
        solver = ReversiblePebblingSolver(fig2_dag)
        assert solver.default_initial_steps(max_pebbles=6) == fig2_dag.depth() + 1


class TestMinimizePebbles:
    def test_fig2_minimum_is_four(self, fig2_dag):
        best, attempts = minimize_pebbles(fig2_dag, timeout_per_budget=30)
        assert best is not None
        assert best.strategy.max_pebbles == 4
        # The scan tried at least budgets 6, 5, 4 and the failing 3.
        assert len(attempts) >= 3

    def test_and9_minimum_within_small_budget(self, and9_dag):
        solver = ReversiblePebblingSolver(and9_dag)
        best, _ = solver.minimize_pebbles(timeout_per_budget=20, lower_bound=3)
        assert best is not None
        assert best.strategy.max_pebbles <= 5

    def test_upper_bound_respected(self, fig2_dag):
        solver = ReversiblePebblingSolver(fig2_dag)
        best, attempts = solver.minimize_pebbles(upper_bound=4, timeout_per_budget=30)
        assert best is not None
        assert best.strategy.max_pebbles <= 4
        assert all(result.max_pebbles <= 4 for result in attempts)


class TestWeightedPebbling:
    """The weighted game: budgets bound total pebbled weight, not count."""

    @staticmethod
    def _weighted(dag, weight=2.0):
        for node in dag.nodes():
            dag.node(node).weight = weight
        return dag

    def test_weight_budget_below_weighted_minimum_is_infeasible(self, fig2_dag):
        # With every node weighing 2, a weight budget of 7 admits at most 3
        # simultaneous pebbles — but fig2 needs 4, so no step bound works.
        # An unweighted budget of 7 "pebbles" would be trivially satisfiable,
        # which proves the weights actually reach the SAT encoding.
        dag = self._weighted(fig2_dag)
        unweighted = ReversiblePebblingSolver(dag)
        assert unweighted.solve(7, time_limit=60).found

        solver = ReversiblePebblingSolver(
            dag, options=EncodingOptions(weighted=True)
        )
        result = solver.solve(7, time_limit=60, max_steps=12)
        assert not result.found
        assert result.outcome is PebblingOutcome.STEP_LIMIT

    def test_weight_budget_of_twice_the_pebble_minimum_succeeds(self, fig2_dag):
        dag = self._weighted(fig2_dag)
        solver = ReversiblePebblingSolver(
            dag, options=EncodingOptions(weighted=True)
        )
        result = solver.solve(8, time_limit=60)
        assert result.found
        assert result.weighted is True
        assert result.weight_used == 8.0
        assert result.strategy.max_pebbles == 4
        assert result.num_steps == 6  # same step count as the unweighted game
        summary = result.summary()
        assert summary["weighted"] is True
        assert summary["weight_used"] == 8.0

    def test_non_uniform_weights_raise_the_budget_selectively(self, fig2_dag):
        # Only E is heavy: computing E holds C, D and E at once, so the
        # weighted game needs w(C) + w(D) + w(E) = 5 while the unweighted
        # game needs just 4 pebbles.
        fig2_dag.node("E").weight = 3.0
        solver = ReversiblePebblingSolver(
            fig2_dag, options=EncodingOptions(weighted=True)
        )
        assert solver.minimum_pebbles_lower_bound() == 5
        infeasible = solver.solve(4, time_limit=60)
        assert infeasible.outcome is PebblingOutcome.INFEASIBLE
        result = solver.solve(6, time_limit=60)
        assert result.found
        assert result.weight_used <= 6.0
        assert max(result.strategy.weight_profile()) <= 6.0

    def test_unit_weights_weighted_matches_unweighted_search(self, fig2_dag):
        weighted = ReversiblePebblingSolver(
            fig2_dag, options=EncodingOptions(weighted=True)
        ).solve(4, time_limit=60)
        plain = ReversiblePebblingSolver(fig2_dag).solve(4, time_limit=60)
        assert weighted.found and plain.found
        assert weighted.num_steps == plain.num_steps
        assert len(weighted.attempts) == len(plain.attempts)

    def test_fractional_weights_are_rejected(self, fig2_dag):
        fig2_dag.node("A").weight = 1.5
        with pytest.raises(PebblingError):
            ReversiblePebblingSolver(
                fig2_dag, options=EncodingOptions(weighted=True)
            ).solve(4)

    def test_weighted_minimize_scans_weight_budgets(self, fig2_dag):
        fig2_dag.node("E").weight = 3.0
        best, attempts = minimize_pebbles(
            fig2_dag,
            options=EncodingOptions(weighted=True),
            timeout_per_budget=30.0,
        )
        assert best is not None and best.strategy is not None
        # Computing E holds C + D + E = 5, but cleaning C up afterwards
        # needs A pebbled next to E, so the weighted minimum is 6.
        assert best.max_pebbles == 6
        assert best.weight_used <= 6.0
        assert all(result.weighted for result in attempts)

    def test_weighted_works_with_incremental_and_monolithic(self, fig2_dag):
        fig2_dag.node("F").weight = 2.0
        options = EncodingOptions(weighted=True)
        incremental = ReversiblePebblingSolver(
            fig2_dag, options=options, incremental=True
        ).solve(5, time_limit=60)
        monolithic = ReversiblePebblingSolver(
            fig2_dag, options=options, incremental=False
        ).solve(5, time_limit=60)
        assert incremental.found and monolithic.found
        assert incremental.num_steps == monolithic.num_steps


class TestStepFloorAndMinimality:
    def test_trusted_step_floor_skips_fruitless_bounds(self, fig2_dag):
        solver = ReversiblePebblingSolver(fig2_dag)
        cold = solver.solve(4, time_limit=60)
        assert cold.num_steps == 6 and len(cold.attempts) == 3
        floored = solver.solve(4, time_limit=60, step_floor=6)
        assert floored.num_steps == 6
        assert len(floored.attempts) == 1
        assert floored.minimal

    def test_loose_step_floor_is_harmless(self, fig2_dag):
        result = ReversiblePebblingSolver(fig2_dag).solve(
            4, time_limit=60, step_floor=2
        )
        assert result.num_steps == 6
        assert result.minimal

    def test_minimal_flag_per_schedule(self, fig2_dag):
        solver = ReversiblePebblingSolver(fig2_dag)
        assert solver.solve(4, time_limit=60).minimal  # linear, inc 1
        assert solver.solve(
            4, time_limit=60, strategy="geometric-refine"
        ).minimal
        # Geometric overshoot may stop above the minimum: never certified.
        assert not solver.solve(4, time_limit=60, strategy="geometric").minimal
        # A linear scan seeded above the floor only proves ">= seed".
        seeded = solver.solve(4, time_limit=60, initial_steps=8)
        assert seeded.found and not seeded.minimal
        # Unsolved searches are never minimal.
        assert not solver.solve(3, time_limit=60).minimal

    def test_linear_coarse_increment_is_not_certified(self, fig2_dag):
        result = ReversiblePebblingSolver(fig2_dag).solve(
            4, time_limit=60, step_increment=2
        )
        assert result.found
        assert not result.minimal
