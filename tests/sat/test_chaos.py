"""Tests for the deterministic fault-injecting ``chaos`` SAT backend.

Covers spec parsing/rendering, the seeded fault schedule's determinism,
each injected fault kind in isolation (flaky first solves, random
crashes, spurious UNKNOWNs, artificial delays), the retry-scope healing
contract (faults must not replay identically on later attempts), and the
registry integration (probe delegates to the inner backend, chaos cannot
nest).
"""

from __future__ import annotations

import pytest

from repro.errors import ChaosInjectedError, SolverError, TransientSolverError
from repro.sat.backend import (
    ChaosBackend,
    ChaosSpec,
    backend_names,
    backend_unavailable_reason,
    chaos_scope,
    create_backend,
    set_chaos_scope,
)
from repro.sat.solver import Status


@pytest.fixture(autouse=True)
def _reset_scope():
    """Chaos scope is module-level state; leave it clean for other tests."""
    set_chaos_scope("", attempt=0, epoch=0)
    yield
    set_chaos_scope("", attempt=0, epoch=0)


def _tiny_backend(spec: str) -> ChaosBackend:
    """A chaos backend over a 1-variable satisfiable instance."""
    backend = create_backend(spec)
    assert isinstance(backend, ChaosBackend)
    variable = backend.add_variable()
    backend.add_clause([variable])
    return backend


class TestSpecParsing:
    def test_defaults(self):
        spec = ChaosSpec.parse(None)
        assert spec == ChaosSpec()
        assert spec.seed == 0 and spec.inner == "cdcl"

    def test_bare_integer_is_the_seed(self):
        assert ChaosSpec.parse("42").seed == 42

    def test_full_key_value_mix(self):
        spec = ChaosSpec.parse("7,flaky=2,crash=0.25,unknown=0.5,delay=0.01,exit=1")
        assert spec.seed == 7
        assert spec.flaky == 2
        assert spec.crash == 0.25
        assert spec.unknown == 0.5
        assert spec.delay == 0.01
        assert spec.exit == 1

    def test_inner_spec_may_contain_colons(self):
        spec = ChaosSpec.parse("inner=external:minisat")
        assert spec.inner == "external:minisat"

    def test_duplicate_seed_rejected(self):
        with pytest.raises(SolverError, match="twice"):
            ChaosSpec.parse("1,2")

    def test_duplicate_key_rejected(self):
        with pytest.raises(SolverError, match="twice"):
            ChaosSpec.parse("flaky=1,flaky=2")

    def test_unknown_key_rejected(self):
        with pytest.raises(SolverError, match="unknown key"):
            ChaosSpec.parse("explode=1")

    @pytest.mark.parametrize("argument", [
        "crash=1.5", "unknown=-0.1", "delay=-1", "flaky=-1", "exit=-2",
        "crash=lots", "seed=x",
    ])
    def test_out_of_range_values_rejected(self, argument):
        with pytest.raises(SolverError):
            ChaosSpec.parse(argument)

    def test_nested_chaos_rejected(self):
        with pytest.raises(SolverError, match="cannot itself be chaos"):
            ChaosSpec.parse("inner=chaos:1")

    def test_render_round_trips(self):
        spec = ChaosSpec.parse("3,inner=dpll,flaky=1,crash=0.1")
        rendered = spec.render()
        assert rendered.startswith("chaos:")
        assert ChaosSpec.parse(rendered.split(":", 1)[1]) == spec


class TestRegistry:
    def test_chaos_is_registered(self):
        assert "chaos" in backend_names()

    def test_probe_delegates_to_inner(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAT_EXTERNAL", raising=False)
        assert backend_unavailable_reason("chaos") is None
        reason = backend_unavailable_reason("chaos:inner=external")
        assert reason is not None  # the inner external backend is unusable

    def test_probe_reports_bad_spec(self):
        assert backend_unavailable_reason("chaos:explode=1") is not None

    def test_create_rejects_nested_chaos(self):
        with pytest.raises(SolverError, match="cannot itself be chaos"):
            create_backend("chaos:inner=chaos")


class TestFaultInjection:
    def test_error_hierarchy(self):
        # Retry layers key off TransientSolverError; chaos faults must be one.
        assert issubclass(ChaosInjectedError, TransientSolverError)

    def test_clean_spec_solves_through_inner(self):
        backend = _tiny_backend("chaos:0")
        result = backend.solve()
        assert result.status is Status.SATISFIABLE

    def test_flaky_fails_first_calls_then_heals(self):
        backend = _tiny_backend("chaos:0,flaky=2")
        with pytest.raises(ChaosInjectedError, match="flaky"):
            backend.solve()
        with pytest.raises(ChaosInjectedError, match="flaky"):
            backend.solve()
        assert backend.solve().status is Status.SATISFIABLE

    def test_flaky_is_silent_on_retry_attempts(self):
        set_chaos_scope("task", attempt=1)
        backend = _tiny_backend("chaos:0,flaky=5")
        assert backend.solve().status is Status.SATISFIABLE

    def test_flaky_is_silent_after_pool_rebuild(self):
        set_chaos_scope("task", attempt=0, epoch=1)
        backend = _tiny_backend("chaos:0,flaky=5")
        assert backend.solve().status is Status.SATISFIABLE

    def test_certain_crash_raises_every_call(self):
        backend = _tiny_backend("chaos:0,crash=1.0")
        for _ in range(3):
            with pytest.raises(ChaosInjectedError, match="crash"):
                backend.solve()

    def test_certain_unknown_is_a_spurious_timeout(self):
        backend = _tiny_backend("chaos:0,unknown=1.0")
        result = backend.solve()
        assert result.status is Status.UNKNOWN
        assert result.model is None

    def test_exit_never_kills_the_main_process(self):
        # The exit fault is guarded to pool worker processes; inline it
        # must fall through to the inner backend instead of killing pytest.
        backend = _tiny_backend("chaos:0,exit=3")
        assert backend.solve().status is Status.SATISFIABLE

    def test_delay_still_solves(self):
        backend = _tiny_backend("chaos:0,delay=0.001")
        assert backend.solve().status is Status.SATISFIABLE

    def test_counters_expose_injections(self):
        backend = _tiny_backend("chaos:0,unknown=1.0")
        backend.solve()
        backend.solve()
        counters = backend.counters()
        assert counters["chaos_calls"] == 2.0
        assert counters["chaos_unknown"] == 2.0
        assert "chaos_crash" not in counters  # only nonzero faults reported


class TestDeterminism:
    def _injection_trace(self, spec: str, calls: int = 40) -> list[str]:
        set_chaos_scope("trace-task", attempt=0, epoch=0)
        backend = _tiny_backend(spec)
        trace = []
        for _ in range(calls):
            try:
                result = backend.solve()
            except ChaosInjectedError:
                trace.append("crash")
            else:
                trace.append(result.status.value)
        return trace

    def test_same_seed_same_schedule(self):
        spec = "chaos:11,crash=0.3,unknown=0.3"
        assert self._injection_trace(spec) == self._injection_trace(spec)

    def test_different_seed_different_schedule(self):
        first = self._injection_trace("chaos:11,crash=0.3,unknown=0.3")
        second = self._injection_trace("chaos:12,crash=0.3,unknown=0.3")
        assert first != second

    def test_schedule_depends_on_scope_token(self):
        spec = "chaos:11,crash=0.5"
        set_chaos_scope("task-a")
        backend = _tiny_backend(spec)
        trace_a = []
        for _ in range(30):
            try:
                backend.solve()
                trace_a.append("ok")
            except ChaosInjectedError:
                trace_a.append("crash")
        set_chaos_scope("task-b")
        backend = _tiny_backend(spec)
        trace_b = []
        for _ in range(30):
            try:
                backend.solve()
                trace_b.append("ok")
            except ChaosInjectedError:
                trace_b.append("crash")
        assert trace_a != trace_b

    def test_scope_accessor_round_trips(self):
        set_chaos_scope("unit", attempt=2, epoch=1)
        assert chaos_scope() == ("unit", 2, 1)
