"""Property tests for the clause-database layer of the CDCL solver.

The learned-clause machinery rewritten for the flat-arena layout —
LBD-ranked reduction, root-level inprocessing (subsumption and
self-subsumption) and the flat watcher lists — is invisible from the
public API when it works, and silently unsound when it does not.  These
tests audit the invariants directly:

* ``_reduce_learned`` never deletes a clause that is locked as a reason
  on the trail or whose LBD is at most ``glue_max``;
* after every reduction and every ``_detach`` the watcher lists are
  exactly consistent (every live clause watched twice, on the negations
  of its first two literals, with no stale slot references);
* inprocessing between restarts never changes a verdict on random
  incremental add/solve/assume sequences, cross-checked against the
  DPLL oracle.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sat.dpll import DpllSolver
from repro.sat.instances import pigeonhole
from repro.sat.solver import CdclSolver

MAX_VARIABLES = 12


@st.composite
def random_cnf(draw, max_clauses: int = 40) -> list[list[int]]:
    num_variables = draw(st.integers(min_value=1, max_value=MAX_VARIABLES))
    num_clauses = draw(st.integers(min_value=0, max_value=max_clauses))
    clauses: list[list[int]] = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=4))
        clauses.append(
            [
                draw(st.integers(min_value=1, max_value=num_variables))
                * draw(st.sampled_from([1, -1]))
                for _ in range(width)
            ]
        )
    return clauses


class AuditingSolver(CdclSolver):
    """CdclSolver that checks reduction invariants on every call."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.reduce_calls = 0

    def _reduce_learned(self):
        locked_before = self._locked_slots() & set(self._learned_slots)
        glue_before = {
            slot
            for slot in self._learned_slots
            if self._lbd[slot] <= self._glue_max
        }
        super()._reduce_learned()
        survivors = set(self._learned_slots)
        assert glue_before <= survivors, "reduction deleted a glue clause"
        assert locked_before <= survivors, "reduction deleted a locked reason"
        for slot in glue_before | locked_before:
            assert self._arena[slot] is not None
        self._debug_check_watches()
        self.reduce_calls += 1

    def _inprocess(self, deadline):
        result = super()._inprocess(deadline)
        self._debug_check_watches()
        return result


def _aggressive(**overrides) -> AuditingSolver:
    """A solver tuned so reduction/inprocessing fire on tiny instances."""
    options = dict(
        reduce_min_learned=8,
        learned_limit_base=8,
        restart_base=4,
        inprocess_interval=16,
    )
    options.update(overrides)
    return AuditingSolver(**options)


def test_reduction_fires_and_preserves_verdict_on_pigeonhole():
    solver = _aggressive()
    for clause in pigeonhole(7, 6).clauses:
        solver.add_clause(clause)
    result = solver.solve()
    assert not result.is_sat
    assert solver.reduce_calls > 0
    assert solver.stats.deleted_clauses > 0
    solver._debug_check_watches()


def test_inprocessing_fires_and_preserves_verdict_on_pigeonhole():
    solver = _aggressive()
    for clause in pigeonhole(7, 6).clauses:
        solver.add_clause(clause)
    assert not solver.solve().is_sat
    assert solver.stats.inprocessings > 0


@given(random_cnf())
@settings(max_examples=80, deadline=None)
def test_aggressive_reduction_agrees_with_dpll(clauses):
    solver = _aggressive()
    dpll = DpllSolver()
    for clause in clauses:
        solver.add_clause(clause)
        dpll.add_clause(clause)
    assert solver.solve().is_sat == dpll.solve().is_sat
    solver._debug_check_watches()


@given(
    st.lists(random_cnf(max_clauses=15), min_size=1, max_size=4),
    st.lists(
        st.lists(
            st.integers(min_value=1, max_value=MAX_VARIABLES), max_size=3
        ),
        min_size=1,
        max_size=4,
    ),
)
@settings(max_examples=60, deadline=None)
def test_incremental_inprocessing_agrees_with_dpll(batches, assumption_sets):
    """Random add/solve/assume sequences: inprocessing must be incremental-
    sound — clauses strengthened or subsumed in one solve must leave every
    later solve (with or without assumptions) agreeing with DPLL."""
    solver = _aggressive()
    reference: list[list[int]] = []
    for index, batch in enumerate(batches):
        for clause in batch:
            solver.add_clause(clause)
            reference.append(clause)
        assumptions = [
            variable if variable % 2 else -variable
            for variable in assumption_sets[index % len(assumption_sets)]
        ]
        dpll = DpllSolver()
        for clause in reference:
            dpll.add_clause(clause)
        for literal in assumptions:
            dpll.add_clause([literal])
        expected = dpll.solve().is_sat
        got = solver.solve(assumptions=assumptions)
        assert got.is_sat == expected
        # And without assumptions the base formula's verdict must hold too.
        dpll_base = DpllSolver()
        for clause in reference:
            dpll_base.add_clause(clause)
        assert solver.solve().is_sat == dpll_base.solve().is_sat
    solver._debug_check_watches()


def test_detach_is_consistent_and_repeatable():
    solver = CdclSolver()
    slots = []
    for clause in ([1, 2, 3], [-1, 2, 4], [2, 3, 4, 5], [-2, -3]):
        solver.add_clause(clause)
    # Internal slots 0..3 in insertion order; detach the middle ones.
    solver._debug_check_watches()
    solver._detach(1)
    solver._free_slot(1)
    solver._debug_check_watches()
    solver._detach(3)
    solver._free_slot(3)
    solver._debug_check_watches()
    assert solver.solve().is_sat
    del slots


def test_glue_clauses_survive_many_solves():
    solver = _aggressive(glue_max=2)
    for clause in pigeonhole(6, 5).clauses:
        solver.add_clause(clause)
    assert not solver.solve().is_sat
    glue = {
        slot
        for slot in solver._learned_slots
        if solver._lbd[slot] <= solver._glue_max
    }
    assert glue == {
        slot for slot in glue if solver._arena[slot] is not None
    }
    assert solver._glue_count == sum(
        1
        for slot in solver._learned_slots
        if solver._lbd[slot] <= solver._glue_max
    )


def test_profile_mode_records_phase_times():
    solver = CdclSolver(profile=True)
    for clause in pigeonhole(6, 5).clauses:
        solver.add_clause(clause)
    assert not solver.solve().is_sat
    phase_times = solver.stats.phase_times
    assert phase_times is not None
    assert set(phase_times) == {
        "propagate", "analyze", "reduce", "inprocess", "bve", "vivify"
    }
    assert all(value >= 0.0 for value in phase_times.values())
    counters = solver.stats.as_dict()
    for key in ("time_propagate", "time_analyze", "time_reduce",
                "time_inprocess", "time_bve", "time_vivify"):
        assert key in counters
    assert counters["time_propagate"] > 0.0


def test_lbd_histogram_counts_learned_clauses():
    solver = CdclSolver()
    for clause in pigeonhole(6, 5).clauses:
        solver.add_clause(clause)
    assert not solver.solve().is_sat
    stats = solver.stats
    total = stats.lbd_glue + stats.lbd_mid + stats.lbd_high
    # The histogram counts every learned lemma, including unit lemmas
    # that are enqueued at the root instead of attached as clauses.
    assert total >= stats.learned_clauses > 0
    assert total <= stats.conflicts
    assert stats.lbd_sum >= total  # every learned clause has LBD >= 1
    assert "lbd_glue" in stats.as_dict()
    assert "phase_times" not in stats.as_dict()
