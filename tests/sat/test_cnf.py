"""Unit tests for CNF containers (Clause, VariablePool, Cnf)."""

import pytest

from repro.errors import CnfError
from repro.sat.cnf import Clause, Cnf, VariablePool, clauses_from_lists


class TestClause:
    def test_deduplicates_literals(self):
        clause = Clause([1, 2, 1, 2])
        assert sorted(clause.literals) == [1, 2]

    def test_tautology_detection(self):
        assert Clause([1, -1]).is_tautology()
        assert not Clause([1, 2]).is_tautology()

    def test_empty_clause(self):
        assert Clause([]).is_empty()
        assert not Clause([3]).is_empty()

    def test_variables(self):
        assert Clause([1, -2, 3]).variables() == {1, 2, 3}

    def test_contains_and_len(self):
        clause = Clause([4, -5])
        assert 4 in clause and -5 in clause and 5 not in clause
        assert len(clause) == 2

    def test_evaluate_true_and_false(self):
        clause = Clause([1, -2])
        assert clause.evaluate({1: True, 2: True}) is True
        assert clause.evaluate({1: False, 2: False}) is True
        assert clause.evaluate({1: False, 2: True}) is False

    def test_evaluate_missing_variable_raises(self):
        with pytest.raises(CnfError):
            Clause([1, 2]).evaluate({1: False})

    def test_rejects_zero_literal(self):
        with pytest.raises(CnfError):
            Clause([0])


class TestVariablePool:
    def test_allocates_consecutive_variables(self):
        pool = VariablePool()
        assert [pool.new() for _ in range(4)] == [1, 2, 3, 4]
        assert pool.num_variables == 4

    def test_first_variable_offset(self):
        pool = VariablePool(first_variable=10)
        assert pool.new() == 10

    def test_rejects_bad_first_variable(self):
        with pytest.raises(CnfError):
            VariablePool(first_variable=0)

    def test_names_round_trip(self):
        pool = VariablePool()
        variable = pool.new("p[A,0]")
        assert pool.name_of(variable) == "p[A,0]"
        assert pool.by_name("p[A,0]") == variable

    def test_duplicate_name_rejected(self):
        pool = VariablePool()
        pool.new("x")
        with pytest.raises(CnfError):
            pool.set_name(pool.new(), "x")

    def test_unknown_name_raises(self):
        with pytest.raises(CnfError):
            VariablePool().by_name("nope")

    def test_new_many_with_prefix(self):
        pool = VariablePool()
        variables = pool.new_many(3, prefix="q")
        assert variables == [1, 2, 3]
        assert pool.name_of(2) == "q[1]"

    def test_new_many_negative_count(self):
        with pytest.raises(CnfError):
            VariablePool().new_many(-1)

    def test_reserve_through(self):
        pool = VariablePool()
        pool.reserve_through(7)
        assert pool.new() == 8


class TestCnf:
    def test_add_clause_tracks_variables(self):
        cnf = Cnf()
        cnf.add_clause([1, -4])
        assert cnf.num_variables == 4
        assert cnf.num_clauses == 1

    def test_add_clauses_and_iteration(self):
        cnf = Cnf()
        cnf.add_clauses([[1, 2], [-1, 3]])
        assert len(cnf) == 2
        assert [list(clause) for clause in cnf] == [[1, 2], [-1, 3]]

    def test_add_unit_and_implication(self):
        cnf = Cnf()
        cnf.add_unit(5)
        cnf.add_implication(1, 2)
        assert cnf.as_lists() == [[5], [-1, 2]]

    def test_add_equivalence(self):
        cnf = Cnf()
        cnf.add_equivalence(1, 2)
        assert sorted(map(sorted, cnf.as_lists())) == [[-2, 1], [-1, 2]]

    def test_evaluate(self):
        cnf = Cnf()
        cnf.add_clause([1, 2])
        cnf.add_clause([-1, 2])
        assert cnf.evaluate({1: True, 2: True}) is True
        assert cnf.evaluate({1: True, 2: False}) is False

    def test_copy_is_independent(self):
        cnf = Cnf()
        cnf.new_variable("a")
        cnf.add_clause([1])
        other = cnf.copy()
        other.add_clause([2])
        assert cnf.num_clauses == 1
        assert other.num_clauses == 2
        assert other.pool.name_of(1) == "a"

    def test_variables_and_stats(self):
        cnf = Cnf()
        cnf.add_clause([1, -3])
        cnf.add_clause([2])
        assert cnf.variables() == {1, 2, 3}
        assert cnf.stats() == {"variables": 3, "clauses": 2, "literals": 3}

    def test_comments_recorded(self):
        cnf = Cnf()
        cnf.add_comment("hello")
        assert cnf.comments == ["hello"]


def test_clauses_from_lists():
    clauses = clauses_from_lists([[1, 2], [-3]])
    assert all(isinstance(clause, Clause) for clause in clauses)
    assert [list(clause) for clause in clauses] == [[1, 2], [-3]]
