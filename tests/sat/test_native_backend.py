"""Parity tests for the ctypes-loaded native CDCL core.

The native core is an escape hatch, not a second source of truth: when a
C compiler is present these tests pin it to the Python engine and the
DPLL oracle on verdicts, model validity and core soundness, end to end
through the pebbling search.  Without a compiler the whole module skips
— cleanly, with the probe's reason — and the one test that must run
everywhere asserts the probe itself: ``cdcl:native=1`` either works or
reports a human-readable reason, never a silent fallback.
"""

from __future__ import annotations

import random

import pytest

from repro.sat.backend import backend_unavailable_reason, create_backend
from repro.sat.dpll import DpllSolver
from repro.sat.instances import pigeonhole
from repro.sat.native import native_unavailable_reason
from repro.sat.solver import CdclSolver

NATIVE_REASON = native_unavailable_reason()

needs_native = pytest.mark.skipif(
    NATIVE_REASON is not None,
    reason=f"native core unavailable: {NATIVE_REASON}",
)


def test_probe_reports_availability_honestly():
    """Runs with or without a compiler: the registry probe must mirror the
    loader exactly — usable, or unavailable with the loader's reason."""
    probe = backend_unavailable_reason("cdcl:native=1")
    if NATIVE_REASON is None:
        assert probe is None
    else:
        assert probe is not None
        assert NATIVE_REASON in probe


def test_unavailable_construction_raises_not_falls_back():
    if NATIVE_REASON is None:
        pytest.skip("native core is available here")
    from repro.errors import SolverError
    from repro.sat.native import NativeCdclSolver

    with pytest.raises(SolverError, match="native core unavailable"):
        NativeCdclSolver()


@needs_native
def test_native_spec_builds_the_native_class():
    from repro.sat.native import NativeCdclSolver

    backend = create_backend("cdcl:native=1")
    assert isinstance(backend, NativeCdclSolver)
    assert isinstance(create_backend("cdcl"), CdclSolver)


@needs_native
def test_pigeonhole_verdicts_and_counters():
    backend = create_backend("cdcl:native=1")
    for clause in pigeonhole(7, 6).clauses:
        assert backend.add_clause(clause)
    result = backend.solve()
    assert result.is_unsat
    counters = backend.counters()
    assert counters["conflicts"] > 0
    assert counters["propagations"] > 0
    assert counters["solve_time"] >= 0


@needs_native
def test_random_cnfs_agree_with_dpll_and_models_are_valid():
    rng = random.Random(1234)
    for _ in range(150):
        num_vars = rng.randint(1, 12)
        clauses = [
            [
                rng.randint(1, num_vars) * rng.choice([1, -1])
                for _ in range(rng.randint(1, 4))
            ]
            for _ in range(rng.randint(0, 40))
        ]
        native = create_backend("cdcl:native=1")
        dpll = DpllSolver()
        for clause in clauses:
            native.add_clause(clause)
            dpll.add_clause(clause)
        result = native.solve()
        assert result.is_sat == dpll.solve().is_sat
        if result.is_sat:
            model = result.model
            for clause in clauses:
                assert any(model[abs(l)] == (l > 0) for l in clause)


@needs_native
def test_assumption_cores_are_sound_subsets():
    rng = random.Random(99)
    for _ in range(100):
        num_vars = rng.randint(2, 10)
        clauses = [
            [
                rng.randint(1, num_vars) * rng.choice([1, -1])
                for _ in range(rng.randint(1, 3))
            ]
            for _ in range(rng.randint(1, 25))
        ]
        assumptions = [
            rng.randint(1, num_vars) * rng.choice([1, -1])
            for _ in range(rng.randint(1, 4))
        ]
        native = create_backend("cdcl:native=1")
        for clause in clauses:
            native.add_clause(clause)
        result = native.solve(assumptions)
        oracle = DpllSolver()
        for clause in clauses:
            oracle.add_clause(clause)
        for literal in assumptions:
            oracle.add_clause([literal])
        assert result.is_sat == oracle.solve().is_sat
        if not result.is_sat:
            core = native.failed_assumptions()
            assert set(core) <= set(assumptions)
            check = DpllSolver()
            for clause in clauses:
                check.add_clause(clause)
            for literal in core:
                check.add_clause([literal])
            assert not check.solve().is_sat


@needs_native
def test_incremental_solving_accumulates_clauses():
    backend = create_backend("cdcl:native=1")
    backend.add_clause([1, 2])
    assert backend.solve().is_sat
    backend.add_clause([-1])
    result = backend.solve()
    assert result.is_sat
    assert result.model[2] is True
    backend.add_clause([-2])
    assert backend.solve().is_unsat


@needs_native
def test_conflict_limit_yields_unknown_not_a_wrong_answer():
    backend = create_backend("cdcl:native=1", conflict_limit=1)
    for clause in pigeonhole(8, 7).clauses:
        backend.add_clause(clause)
    result = backend.solve()
    assert result.is_unknown or result.is_unsat


@needs_native
def test_pebbling_search_parity_with_the_python_engine():
    from repro.pebbling.solver import ReversiblePebblingSolver
    from repro.workloads import load_workload

    for workload, budget in (("fig2", 4), ("c17", 4)):
        dag = load_workload(workload)
        python_result = ReversiblePebblingSolver(dag, backend="cdcl").solve(budget)
        native_result = ReversiblePebblingSolver(
            dag, backend="cdcl:native=1"
        ).solve(budget)
        assert native_result.outcome == python_result.outcome
        assert native_result.num_steps == python_result.num_steps
