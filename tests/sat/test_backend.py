"""Tests for the incremental-SAT backend protocol and registry.

Covers the registry's spec parsing / availability probing, protocol
conformance of all three bundled backends, and — most importantly — the
soundness of ``failed_assumptions()`` cores: a hypothesis property
cross-checks the CDCL cores against the DPLL oracle on random CNFs.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.sat.backend import (
    CdclSpec,
    DpllBackend,
    ExternalDimacsBackend,
    IncrementalSatBackend,
    backend_names,
    backend_unavailable_reason,
    create_backend,
    describe_backends,
    require_backend,
    split_backend_spec,
)
from repro.sat.cnf import Cnf
from repro.sat.dpll import DpllSolver
from repro.sat.solver import CdclSolver, Status
from tests.external_stub_solver import stub_backend_spec, stub_command

STUB = stub_command()
STUB_SPEC = stub_backend_spec()


class TestRegistry:
    def test_bundled_backends_registered(self):
        assert {"cdcl", "dpll", "external"} <= set(backend_names())

    def test_unknown_backend_lists_names(self):
        with pytest.raises(SolverError, match="registered backends: cdcl"):
            create_backend("bogus")

    def test_spec_argument_splitting(self):
        assert split_backend_spec("cdcl") == ("cdcl", None)
        assert split_backend_spec("external:minisat -v") == ("external", "minisat -v")

    def test_cdcl_rejects_malformed_argument(self):
        with pytest.raises(SolverError, match="expected key=value"):
            create_backend("cdcl:foo")

    def test_external_unavailable_without_command(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAT_EXTERNAL", raising=False)
        reason = backend_unavailable_reason("external")
        assert reason is not None and "REPRO_SAT_EXTERNAL" in reason
        with pytest.raises(SolverError, match="not usable on this host"):
            require_backend("external")

    def test_external_env_configuration(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAT_EXTERNAL", STUB)
        assert backend_unavailable_reason("external") is None
        backend = create_backend("external")
        assert isinstance(backend, ExternalDimacsBackend)
        assert backend.command == STUB

    def test_external_missing_binary_probed(self):
        reason = backend_unavailable_reason("external:/nonexistent/solver-binary")
        assert reason is not None and "not found" in reason

    def test_describe_backends_rows(self):
        rows = {row["name"]: row for row in describe_backends()}
        assert rows["cdcl"]["available"] is True
        assert rows["dpll"]["available"] is True

    def test_instances_conform_to_protocol(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAT_EXTERNAL", STUB)
        for spec in ("cdcl", "dpll", "external"):
            backend = create_backend(spec)
            assert isinstance(backend, IncrementalSatBackend)

    def test_conflict_limit_forwarded_to_cdcl(self):
        backend = create_backend("cdcl", conflict_limit=7)
        assert backend.default_conflict_limit == 7


class TestCdclSpec:
    def test_defaults(self):
        spec = CdclSpec.parse(None)
        assert spec == CdclSpec()
        assert spec.render() == "cdcl"

    def test_parse_and_render_round_trip(self):
        spec = CdclSpec.parse("restart_base=200, var_decay=0.9, seed=7")
        assert spec.restart_base == 200
        assert spec.var_decay == 0.9
        assert spec.seed == 7
        rendered = spec.render()
        assert rendered == "cdcl:restart_base=200,seed=7,var_decay=0.9"
        name, argument = split_backend_spec(rendered)
        assert name == "cdcl"
        assert CdclSpec.parse(argument) == spec

    def test_profile_flag(self):
        assert CdclSpec.parse("profile=1").profile is True
        assert CdclSpec.parse("profile=0").profile is False
        assert CdclSpec.parse("profile=1").render() == "cdcl:profile=1"
        with pytest.raises(SolverError, match="profile wants 0 or 1"):
            CdclSpec.parse("profile=2")

    @pytest.mark.parametrize(
        ("argument", "message"),
        [
            ("restart_base=0", "restart_base must be >= 1"),
            ("glue_max=-1", "glue_max must be >= 0"),
            ("var_decay=1.5", r"var_decay must be in \(0, 1\]"),
            ("clause_decay=0", r"clause_decay must be in \(0, 1\]"),
            ("seed=x", "seed wants an integer"),
            ("var_decay=fast", "var_decay wants a number"),
            ("seed=1,seed=2", "given twice"),
            ("bogus=3", "unknown key"),
        ],
    )
    def test_rejections(self, argument, message):
        with pytest.raises(SolverError, match=message):
            CdclSpec.parse(argument)

    def test_build_forwards_options(self):
        solver = CdclSpec.parse(
            "restart_base=50,seed=11,glue_max=3,inprocess_interval=0"
        ).build(conflict_limit=9)
        assert isinstance(solver, CdclSolver)
        assert solver._restart_base == 50
        assert solver._glue_max == 3
        assert solver._inprocess_interval == 0
        assert solver.default_conflict_limit == 9

    def test_tuned_spec_solves_through_registry(self):
        backend = create_backend(
            "cdcl:restart_base=4,reduce_min_learned=8,learned_limit_base=8"
        )
        for clause in ([1, 2], [-1, 2], [-2, 3]):
            backend.add_clause(clause)
        assert backend.solve().is_sat

    def test_probe_reports_bad_specs(self):
        reason = backend_unavailable_reason("cdcl:bogus=1")
        assert reason is not None and "unknown key" in reason
        assert backend_unavailable_reason("cdcl:glue_max=3") is None
        require_backend("cdcl:glue_max=3")


def _load_simple(backend: IncrementalSatBackend) -> None:
    backend.add_clause([1, 2])
    backend.add_clause([-1, 2])
    backend.add_clause([-2, 3])


@pytest.mark.parametrize("spec", ["cdcl", "dpll", STUB_SPEC])
class TestProtocolConformance:
    def test_solve_and_model(self, spec):
        backend = create_backend(spec)
        _load_simple(backend)
        result = backend.solve()
        assert result.is_sat and result.model is not None
        assert result.model[2] is True and result.model[3] is True

    def test_incremental_clause_addition(self, spec):
        backend = create_backend(spec)
        _load_simple(backend)
        assert backend.solve().is_sat
        backend.add_clause([-3])
        assert backend.solve().is_unsat

    def test_assumptions_and_core(self, spec):
        backend = create_backend(spec)
        _load_simple(backend)
        result = backend.solve([-3])
        assert result.is_unsat
        core = backend.failed_assumptions()
        assert core == [-3]
        assert backend.solve([3]).is_sat

    def test_core_only_after_unsat(self, spec):
        backend = create_backend(spec)
        _load_simple(backend)
        backend.solve([3])
        with pytest.raises(SolverError, match="UNSAT"):
            backend.failed_assumptions()

    def test_add_variable_and_cnf(self, spec):
        backend = create_backend(spec)
        first = backend.add_variable()
        assert first == 1
        cnf = Cnf()
        a, b = cnf.new_variable("a"), cnf.new_variable("b")
        cnf.add_clause([a, b])
        backend.add_cnf(cnf)
        assert backend.num_variables >= cnf.num_variables
        assert backend.solve().is_sat

    def test_counters_are_reported_subset(self, spec):
        backend = create_backend(spec)
        _load_simple(backend)
        backend.solve()
        counters = backend.counters()
        assert "solve_time" in counters
        if spec != "cdcl":
            assert "blocker_hits" not in counters


class TestDpllCores:
    def test_core_is_subset_minimal(self):
        backend = DpllBackend()
        backend.add_clause([-1, -2])
        result = backend.solve([1, 2, 3, 4])
        assert result.is_unsat
        assert sorted(backend.failed_assumptions()) == [1, 2]

    def test_empty_core_when_formula_unsat(self):
        backend = DpllBackend()
        backend.add_clause([1])
        backend.add_clause([-1])
        assert backend.solve([2]).is_unsat
        assert backend.failed_assumptions() == []

    def test_time_limit_returns_unknown_eventually(self):
        backend = DpllBackend()
        # A hard pigeonhole-ish instance would be overkill; a zero budget
        # trips the deadline on the first recursion instead.
        for v in range(1, 9):
            backend.add_clause([v, -(v % 8 + 1)])
        result = backend.solve(time_limit=-1.0)
        assert result.is_unknown


class TestExternalBackend:
    def test_stdout_convention_parses(self, monkeypatch):
        monkeypatch.setenv("STUB_SOLVER_STDOUT", "1")
        backend = ExternalDimacsBackend(STUB)
        backend.add_clause([1, 2])
        backend.add_clause([-1])
        result = backend.solve()
        assert result.is_sat and result.model[2] is True

    def test_output_file_convention_parses(self):
        backend = ExternalDimacsBackend(STUB)
        backend.add_clause([1])
        assert backend.solve().is_sat
        backend.add_clause([-1])
        assert backend.solve().is_unsat

    def test_trivial_core_is_full_assumption_list(self):
        backend = ExternalDimacsBackend(STUB)
        backend.add_clause([-1, -2])
        result = backend.solve([1, 2, 3])
        assert result.is_unsat
        assert backend.failed_assumptions() == [1, 2, 3]

    def test_missing_binary_raises(self):
        backend = ExternalDimacsBackend("/nonexistent/solver-binary")
        backend.add_clause([1])
        with pytest.raises(SolverError, match="cannot run external SAT solver"):
            backend.solve()

    def test_empty_command_rejected(self):
        with pytest.raises(SolverError, match="needs a solver command"):
            ExternalDimacsBackend("   ")


# ---------------------------------------------------------------------------
# hypothesis: CDCL failed-assumption cores are sound, cross-checked vs DPLL
# ---------------------------------------------------------------------------
MAX_VARIABLES = 8


@st.composite
def cnf_with_assumptions(draw):
    num_variables = draw(st.integers(min_value=1, max_value=MAX_VARIABLES))
    num_clauses = draw(st.integers(min_value=0, max_value=24))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=3))
        clauses.append(
            [
                draw(st.integers(min_value=1, max_value=num_variables))
                * draw(st.sampled_from([1, -1]))
                for _ in range(width)
            ]
        )
    num_assumptions = draw(st.integers(min_value=1, max_value=num_variables))
    assumptions = [
        draw(st.integers(min_value=1, max_value=num_variables))
        * draw(st.sampled_from([1, -1]))
        for _ in range(num_assumptions)
    ]
    return clauses, assumptions


@given(cnf_with_assumptions())
@settings(max_examples=200, deadline=None)
def test_cdcl_core_is_sound_and_subset(case):
    """The CDCL core is a subset of the assumptions and F + core is UNSAT.

    Verdicts are cross-checked against the DPLL oracle, and the core's
    refutation is *independently verified* by solving the formula with
    only the core literals as assumptions on a fresh DPLL solver.
    """
    clauses, assumptions = case
    cdcl = CdclSolver()
    dpll = DpllSolver()
    for clause in clauses:
        cdcl.add_clause(clause)
        dpll.add_clause(clause)
    cdcl_result = cdcl.solve(assumptions)
    dpll_result = dpll.solve(assumptions)
    assert cdcl_result.status == dpll_result.status
    if not cdcl_result.is_unsat:
        return
    core = cdcl.failed_assumptions()
    assert set(core) <= set(assumptions)
    # Soundness: the formula plus the core alone must still be UNSAT.
    oracle = DpllSolver()
    for clause in clauses:
        oracle.add_clause(clause)
    assert oracle.solve(core).status is Status.UNSATISFIABLE


@given(cnf_with_assumptions())
@settings(max_examples=100, deadline=None)
def test_dpll_backend_core_is_sound_and_subset(case):
    clauses, assumptions = case
    backend = DpllBackend()
    for clause in clauses:
        backend.add_clause(clause)
    if not backend.solve(assumptions).is_unsat:
        return
    core = backend.failed_assumptions()
    assert set(core) <= set(assumptions)
    oracle = DpllSolver()
    for clause in clauses:
        oracle.add_clause(clause)
    assert oracle.solve(core).status is Status.UNSATISFIABLE


class TestCoreProbeBudget:
    def test_dpll_core_probes_carry_a_deadline(self, monkeypatch):
        backend = DpllBackend()
        backend.add_clause([-1, -2])
        assert backend.solve([1, 2, 3]).is_unsat
        probes: list[float] = []
        original = backend._solver.solve

        def spy(assumptions=(), *, time_limit=None):
            probes.append(time_limit)
            return original(assumptions, time_limit=time_limit)

        monkeypatch.setattr(backend._solver, "solve", spy)
        assert sorted(backend.failed_assumptions()) == [1, 2]
        assert probes, "minimisation ran no probes"
        assert all(limit is not None and limit > 0 for limit in probes)

    def test_exhausted_probe_budget_returns_sound_superset(self, monkeypatch):
        backend = DpllBackend()
        backend.add_clause([-1, -2])
        assert backend.solve([1, 2, 3]).is_unsat
        # Pretend the original solve took forever ago: a zero budget means
        # no probes run and the unminimised (still sound) core comes back.
        monkeypatch.setattr(
            "repro.sat.backend.time.monotonic",
            lambda _clock=iter([0.0] + [10.0] * 100): next(_clock),
        )
        backend._last_seconds = 0.0
        core = backend.failed_assumptions()
        assert core == [1, 2, 3]


class TestExternalTimeoutCounters:
    def test_counters_are_fresh_after_a_timed_out_solve(self):
        backend = ExternalDimacsBackend(STUB)
        backend.add_clause([1])
        assert backend.solve().is_sat
        slow = ExternalDimacsBackend(
            f"{sys.executable} -c \"import time; time.sleep(30)\""
        )
        slow._clauses = backend._clauses
        slow._num_vars = backend._num_vars
        first = backend.counters()["solve_time"]
        assert first > 0
        result = slow.solve(time_limit=0.3)
        assert result.is_unknown
        reported = slow.counters()["solve_time"]
        assert 0 < reported < 5, "timed-out solve must report its own duration"
        with pytest.raises(SolverError, match="UNSAT"):
            slow.failed_assumptions()

    def test_probe_budget_clamped_to_solve_time_limit(self, monkeypatch):
        backend = DpllBackend()
        backend.add_clause([-1, -2])
        assert backend.solve([1, 2, 3], time_limit=0.05).is_unsat
        probes: list[float] = []
        original = backend._solver.solve

        def spy(assumptions=(), *, time_limit=None):
            probes.append(time_limit)
            return original(assumptions, time_limit=time_limit)

        monkeypatch.setattr(backend._solver, "solve", spy)
        core = backend.failed_assumptions()
        assert set(core) <= {1, 2, 3}
        # Every probe stays inside the original call's 0.05 s budget — a
        # caller's tight time limit is never blown by minimisation.
        assert all(limit is not None and limit <= 0.05 for limit in probes)
