"""Unit and exhaustive tests for the cardinality-constraint encodings."""

import itertools
import math

import pytest

from repro.errors import CnfError
from repro.sat.cards import (
    CardinalityEncoding,
    at_least_k,
    at_most_k,
    at_most_k_weighted,
    at_most_one,
    count_true,
    exactly_k,
    exactly_one,
    weighted_sum_true,
)
from repro.sat.cnf import Cnf
from repro.sat.solver import CdclSolver

ALL_ENCODINGS = list(CardinalityEncoding)


def _count_satisfying_patterns(cnf: Cnf, literals: list[int]) -> int:
    """Count input patterns over ``literals`` consistent with ``cnf``."""
    count = 0
    for bits in itertools.product([False, True], repeat=len(literals)):
        solver = CdclSolver()
        solver.add_cnf(cnf)
        assumptions = [lit if value else -lit for lit, value in zip(literals, bits)]
        if solver.solve(assumptions).is_sat:
            count += 1
    return count


class TestEncodingSelection:
    def test_from_name_accepts_enum_and_string(self):
        assert CardinalityEncoding.from_name("totalizer") is CardinalityEncoding.TOTALIZER
        assert (
            CardinalityEncoding.from_name(CardinalityEncoding.PAIRWISE)
            is CardinalityEncoding.PAIRWISE
        )

    def test_from_name_rejects_unknown(self):
        with pytest.raises(CnfError):
            CardinalityEncoding.from_name("bitonic")


@pytest.mark.parametrize("encoding", ALL_ENCODINGS)
@pytest.mark.parametrize("n,k", [(4, 1), (5, 2), (6, 3), (5, 4)])
class TestAtMostKExhaustive:
    def test_counts_match_binomial_sum(self, encoding, n, k):
        cnf = Cnf()
        literals = cnf.new_variables(n)
        at_most_k(cnf, literals, k, encoding=encoding)
        expected = sum(math.comb(n, i) for i in range(k + 1))
        assert _count_satisfying_patterns(cnf, literals) == expected


@pytest.mark.parametrize("encoding", ALL_ENCODINGS)
class TestAtMostKEdgeCases:
    def test_bound_zero_forces_all_false(self, encoding):
        cnf = Cnf()
        literals = cnf.new_variables(3)
        at_most_k(cnf, literals, 0, encoding=encoding)
        solver = CdclSolver(cnf)
        assert solver.solve([literals[0]]).is_unsat
        assert solver.solve([-l for l in literals]).is_sat

    def test_bound_at_least_n_is_trivial(self, encoding):
        cnf = Cnf()
        literals = cnf.new_variables(3)
        at_most_k(cnf, literals, 3, encoding=encoding)
        assert cnf.num_clauses == 0

    def test_negative_bound_is_unsatisfiable(self, encoding):
        cnf = Cnf()
        literals = cnf.new_variables(2)
        at_most_k(cnf, literals, -1, encoding=encoding)
        assert CdclSolver(cnf).solve().is_unsat

    def test_works_on_negated_literals(self, encoding):
        cnf = Cnf()
        variables = cnf.new_variables(4)
        at_most_k(cnf, [-v for v in variables], 1, encoding=encoding)
        solver = CdclSolver(cnf)
        # Three variables false means two negated literals true: forbidden.
        assert solver.solve([-variables[0], -variables[1], variables[2], variables[3]]).is_unsat
        assert solver.solve([variables[0], variables[1], variables[2], -variables[3]]).is_sat


class TestAtLeastAndExactly:
    @pytest.mark.parametrize("n,k", [(4, 2), (5, 3)])
    def test_at_least_k_counts(self, n, k):
        cnf = Cnf()
        literals = cnf.new_variables(n)
        at_least_k(cnf, literals, k)
        expected = sum(math.comb(n, i) for i in range(k, n + 1))
        assert _count_satisfying_patterns(cnf, literals) == expected

    def test_at_least_zero_is_trivial(self):
        cnf = Cnf()
        literals = cnf.new_variables(3)
        at_least_k(cnf, literals, 0)
        assert cnf.num_clauses == 0

    def test_at_least_more_than_n_is_unsat(self):
        cnf = Cnf()
        literals = cnf.new_variables(2)
        at_least_k(cnf, literals, 3)
        assert CdclSolver(cnf).solve().is_unsat

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_exactly_k_counts(self, encoding):
        n, k = 5, 2
        cnf = Cnf()
        literals = cnf.new_variables(n)
        exactly_k(cnf, literals, k, encoding=encoding)
        assert _count_satisfying_patterns(cnf, literals) == math.comb(n, k)

    def test_exactly_one(self):
        cnf = Cnf()
        literals = cnf.new_variables(4)
        exactly_one(cnf, literals)
        assert _count_satisfying_patterns(cnf, literals) == 4

    def test_exactly_one_empty_raises(self):
        with pytest.raises(CnfError):
            exactly_one(Cnf(), [])

    def test_at_most_one(self):
        cnf = Cnf()
        literals = cnf.new_variables(4)
        at_most_one(cnf, literals)
        assert _count_satisfying_patterns(cnf, literals) == 5


class TestPairwiseGuard:
    def test_explosion_is_rejected(self):
        cnf = Cnf()
        literals = cnf.new_variables(60)
        with pytest.raises(CnfError):
            at_most_k(cnf, literals, 30, encoding=CardinalityEncoding.PAIRWISE)


class TestCountTrue:
    def test_counts_positive_and_negative_literals(self):
        model = {1: True, 2: False, 3: True}
        assert count_true(model, [1, 2, 3]) == 2
        assert count_true(model, [-1, -2, -3]) == 1
        assert count_true(model, []) == 0

    def test_missing_variables_count_as_false(self):
        assert count_true({}, [5, -5]) == 1


class TestCrossEncodingEquivalence:
    """Exhaustive semantic equivalence of the three at-most-k encodings.

    For every n <= 5, every bound k <= n and *every* assignment of the n
    input literals, each encoding (with its auxiliary variables projected
    away by the SAT solver) must accept the assignment iff at most k inputs
    are true — so pairwise, sequential and totalizer are pointwise
    interchangeable, not just equisatisfiable.
    """

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_exhaustive_on_all_assignments(self, encoding):
        for count in range(1, 6):
            literals = list(range(1, count + 1))
            for bound in range(0, count + 1):
                cnf = Cnf()
                cnf.new_variables(count)
                at_most_k(cnf, literals, bound, encoding=encoding)
                for bits in itertools.product([False, True], repeat=count):
                    solver = CdclSolver()
                    solver.add_cnf(cnf)
                    assumptions = [
                        literal if value else -literal
                        for literal, value in zip(literals, bits)
                    ]
                    expected = sum(bits) <= bound
                    assert solver.solve(assumptions).is_sat is expected, (
                        encoding, count, bound, bits,
                    )

    def test_encodings_agree_on_negated_literals(self):
        # The constraint must also work over negative DIMACS literals.
        literals = [1, -2, 3, -4]
        patterns = {}
        for encoding in ALL_ENCODINGS:
            cnf = Cnf()
            cnf.new_variables(4)
            at_most_k(cnf, literals, 2, encoding=encoding)
            patterns[encoding] = _count_satisfying_patterns(cnf, [1, 2, 3, 4])
        assert len(set(patterns.values())) == 1
        assert patterns[CardinalityEncoding.PAIRWISE] == sum(
            1
            for bits in itertools.product([False, True], repeat=4)
            if sum(bits[i] == (literals[i] > 0) for i in range(4)) <= 2
        )


class TestAuxiliaryNaming:
    @pytest.mark.parametrize(
        "encoding",
        [CardinalityEncoding.SEQUENTIAL, CardinalityEncoding.TOTALIZER],
    )
    def test_name_prefix_names_every_auxiliary(self, encoding):
        cnf = Cnf()
        inputs = cnf.new_variables(6, prefix="x")
        at_most_k(cnf, inputs, 2, encoding=encoding, name_prefix="card[test]")
        for variable in range(1, cnf.num_variables + 1):
            name = cnf.pool.name_of(variable)
            assert name is not None
            if variable not in inputs:
                assert name.startswith("card[test].")

    def test_anonymous_by_default(self):
        cnf = Cnf()
        inputs = cnf.new_variables(4)
        at_most_k(cnf, inputs, 2, encoding=CardinalityEncoding.SEQUENTIAL)
        auxiliaries = [v for v in range(1, cnf.num_variables + 1) if v not in inputs]
        assert auxiliaries
        assert all(cnf.pool.name_of(v) is None for v in auxiliaries)


class TestAtMostKWeighted:
    """Exhaustive and structural tests of the pseudo-Boolean encoding."""

    def test_exhaustive_on_all_assignments(self):
        cases = [
            ([1, 1, 1], 2),          # degenerate: pure cardinality
            ([2, 1, 1], 2),
            ([2, 2, 2], 3),
            ([3, 1, 2], 3),
            ([1, 2, 3, 4], 5),
            ([5, 1, 1, 1], 4),       # one literal heavier than the bound
            ([2, 3, 2, 1, 2], 6),
        ]
        for weights, bound in cases:
            count = len(weights)
            literals = list(range(1, count + 1))
            cnf = Cnf()
            cnf.new_variables(count)
            at_most_k_weighted(cnf, literals, weights, bound)
            for bits in itertools.product([False, True], repeat=count):
                solver = CdclSolver()
                solver.add_cnf(cnf)
                assumptions = [
                    literal if value else -literal
                    for literal, value in zip(literals, bits)
                ]
                expected = sum(w for w, b in zip(weights, bits) if b) <= bound
                assert solver.solve(assumptions).is_sat is expected, (
                    weights, bound, bits,
                )

    @pytest.mark.parametrize("encoding", ALL_ENCODINGS)
    def test_unit_weights_degenerate_to_every_encoding(self, encoding):
        # With all weights 1 the weighted entry point must emit exactly the
        # clauses of the chosen unweighted encoding.
        for bound in (0, 1, 2, 4):
            plain = Cnf()
            literals = plain.new_variables(4)
            at_most_k(plain, literals, bound, encoding=encoding)
            weighted = Cnf()
            weighted.new_variables(4)
            at_most_k_weighted(weighted, literals, [1, 1, 1, 1], bound,
                               encoding=encoding)
            assert [c.literals for c in weighted.clauses] == [
                c.literals for c in plain.clauses
            ]

    def test_weighted_agrees_with_unweighted_duplication(self):
        # sum(w_i x_i) <= k is equivalent to at-most-k over each literal
        # repeated w_i times; compare satisfying-pattern counts.
        weights = [2, 1, 3]
        bound = 3
        cnf = Cnf()
        literals = cnf.new_variables(3)
        at_most_k_weighted(cnf, literals, weights, bound)
        expected = sum(
            1
            for bits in itertools.product([False, True], repeat=3)
            if sum(w for w, b in zip(weights, bits) if b) <= bound
        )
        assert _count_satisfying_patterns(cnf, literals) == expected

    def test_negative_bound_is_unsatisfiable(self):
        cnf = Cnf()
        literals = cnf.new_variables(2)
        at_most_k_weighted(cnf, literals, [2, 3], -1)
        assert CdclSolver(cnf).solve().is_unsat

    def test_trivially_satisfied_emits_nothing(self):
        cnf = Cnf()
        literals = cnf.new_variables(3)
        at_most_k_weighted(cnf, literals, [2, 2, 2], 6)
        assert cnf.num_clauses == 0

    def test_too_heavy_literal_is_forced_false(self):
        cnf = Cnf()
        literals = cnf.new_variables(3)
        at_most_k_weighted(cnf, literals, [7, 1, 1], 3)
        solver = CdclSolver(cnf)
        assert solver.solve([literals[0]]).is_unsat
        assert solver.solve([literals[1], literals[2]]).is_sat

    def test_works_on_negated_literals(self):
        weights = [2, 2, 1]
        literals = [1, -2, 3]
        cnf = Cnf()
        cnf.new_variables(3)
        at_most_k_weighted(cnf, literals, weights, 3)
        for bits in itertools.product([False, True], repeat=3):
            solver = CdclSolver()
            solver.add_cnf(cnf)
            assumptions = [
                var if value else -var for var, value in zip([1, 2, 3], bits)
            ]
            total = sum(
                w
                for w, lit, value in zip(weights, literals, bits)
                if value == (lit > 0)
            )
            assert solver.solve(assumptions).is_sat is (total <= 3)

    def test_rejects_mismatched_weights(self):
        cnf = Cnf()
        literals = cnf.new_variables(3)
        with pytest.raises(CnfError):
            at_most_k_weighted(cnf, literals, [1, 2], 2)

    @pytest.mark.parametrize("bad", [0, -1, 1.5])
    def test_rejects_non_positive_or_fractional_weights(self, bad):
        cnf = Cnf()
        literals = cnf.new_variables(2)
        with pytest.raises(CnfError):
            at_most_k_weighted(cnf, literals, [1, bad], 2)

    def test_integral_floats_are_accepted(self):
        cnf = Cnf()
        literals = cnf.new_variables(2)
        at_most_k_weighted(cnf, literals, [2.0, 1.0], 2)
        solver = CdclSolver(cnf)
        assert solver.solve(literals).is_unsat

    def test_name_prefix_names_every_register(self):
        cnf = Cnf()
        inputs = cnf.new_variables(4, prefix="x")
        at_most_k_weighted(cnf, inputs, [2, 1, 3, 1], 4, name_prefix="card[w]")
        auxiliaries = [
            v for v in range(1, cnf.num_variables + 1) if v not in inputs
        ]
        assert auxiliaries
        for variable in auxiliaries:
            name = cnf.pool.name_of(variable)
            assert name is not None and name.startswith("card[w].r[")


class TestWeightedSumTrue:
    def test_counts_weight_of_satisfied_literals(self):
        model = {1: True, 2: False, 3: True}
        assert weighted_sum_true(model, [1, 2, 3], [2, 4, 1]) == 3
        assert weighted_sum_true(model, [-1, -2, 3], [2, 4, 1]) == 5

    def test_missing_variables_count_as_false(self):
        assert weighted_sum_true({}, [1, -2], [3, 2]) == 2
