"""Unit tests for the CDCL solver."""

import pytest

from repro.errors import SolverError
from repro.sat.cnf import Cnf
from repro.sat.instances import pigeonhole as _pigeonhole
from repro.sat.solver import CdclSolver, Status, luby, solve_cnf


class TestBasicSolving:
    def test_empty_formula_is_sat(self):
        assert CdclSolver().solve().is_sat

    def test_single_unit(self):
        solver = CdclSolver()
        solver.add_clause([3])
        result = solver.solve()
        assert result.is_sat
        assert result.model[3] is True

    def test_conflicting_units_unsat(self):
        solver = CdclSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve().is_unsat

    def test_simple_implication_chain(self):
        solver = CdclSolver()
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        result = solver.solve()
        assert result.is_sat
        assert result.model[1] and result.model[2] and result.model[3]

    def test_model_satisfies_all_clauses(self):
        clauses = [[1, 2, 3], [-1, -2], [-2, -3], [-1, -3], [2, 3]]
        solver = CdclSolver()
        for clause in clauses:
            solver.add_clause(clause)
        result = solver.solve()
        assert result.is_sat
        for clause in clauses:
            assert any(result.model[abs(l)] == (l > 0) for l in clause)

    def test_unsat_xor_system(self):
        # x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 1 is unsatisfiable.
        solver = CdclSolver()
        for a, b in [(1, 2), (2, 3), (1, 3)]:
            solver.add_clause([a, b])
            solver.add_clause([-a, -b])
        assert solver.solve().is_unsat

    def test_tautological_clause_is_ignored(self):
        solver = CdclSolver()
        solver.add_clause([1, -1])
        assert solver.num_clauses == 0
        assert solver.solve().is_sat

    def test_duplicate_literals_merged(self):
        solver = CdclSolver()
        solver.add_clause([2, 2, 2])
        result = solver.solve()
        assert result.is_sat
        assert result.model[2] is True

    def test_empty_clause_makes_unsat(self):
        solver = CdclSolver()
        assert solver.add_clause([]) is False
        assert solver.solve().is_unsat

    def test_invalid_literal_rejected(self):
        solver = CdclSolver()
        with pytest.raises(SolverError):
            solver.add_clause([0])
        with pytest.raises(SolverError):
            solver.add_clause([True])

    def test_add_cnf_and_variable_counts(self):
        cnf = Cnf()
        cnf.add_clause([1, 2])
        cnf.new_variable()  # variable 3 never used in clauses
        solver = CdclSolver(cnf)
        assert solver.num_variables == 3
        assert solver.num_clauses == 1

    def test_add_variable(self):
        solver = CdclSolver()
        first = solver.add_variable()
        second = solver.add_variable()
        assert (first, second) == (1, 2)


class TestPigeonhole:
    def test_php_5_4_unsat(self):
        result = solve_cnf(_pigeonhole(5, 4))
        assert result.is_unsat
        assert result.stats.conflicts > 0

    def test_php_6_5_unsat(self):
        assert solve_cnf(_pigeonhole(6, 5)).is_unsat

    def test_php_sat_when_enough_holes(self):
        assert solve_cnf(_pigeonhole(4, 4)).is_sat


class TestAssumptions:
    def test_assumptions_do_not_persist(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        assert solver.solve([-1, -2]).is_unsat
        assert solver.solve().is_sat

    def test_assumption_forces_value(self):
        solver = CdclSolver()
        solver.add_clause([-1, 2])
        result = solver.solve([1])
        assert result.is_sat
        assert result.model[1] and result.model[2]

    def test_contradictory_assumptions(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        assert solver.solve([1, -1]).is_unsat

    def test_assumption_on_fresh_variable(self):
        solver = CdclSolver()
        solver.add_clause([1])
        result = solver.solve([7])
        assert result.is_sat
        assert result.model[7] is True

    def test_incremental_clause_addition(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        assert solver.solve([-2]).is_sat
        solver.add_clause([-1])
        assert solver.solve([-2]).is_unsat
        assert solver.solve().is_sat


class TestLimits:
    def test_conflict_limit_returns_unknown(self):
        result = solve_cnf(_pigeonhole(7, 6), conflict_limit=5)
        assert result.is_unknown

    def test_time_limit_returns_unknown(self):
        result = solve_cnf(_pigeonhole(9, 8), time_limit=0.05)
        assert result.status in (Status.UNKNOWN, Status.UNSATISFIABLE)

    def test_stats_populated(self):
        result = solve_cnf(_pigeonhole(5, 4))
        stats = result.stats.as_dict()
        assert stats["conflicts"] > 0
        assert stats["decisions"] > 0
        assert stats["propagations"] > 0
        assert stats["solve_time"] >= 0


class TestLuby:
    def test_first_fifteen_elements(self):
        assert [luby(i) for i in range(1, 16)] == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]

    def test_power_positions(self):
        assert luby(31) == 16
        assert luby(63) == 32

    def test_rejects_non_positive(self):
        with pytest.raises(SolverError):
            luby(0)


class TestHotPathCounters:
    def test_blocker_hits_and_heap_decisions_reported(self):
        result = solve_cnf(_pigeonhole(5, 4))
        stats = result.stats.as_dict()
        assert stats["heap_decisions"] == stats["decisions"] > 0
        assert stats["blocker_hits"] > 0

    def test_deadline_checks_are_batched(self):
        result = solve_cnf(_pigeonhole(6, 5), time_limit=3600.0)
        assert result.is_unsat
        # With a time limit set, the hot loop skips most monotonic() reads.
        assert result.stats.deadline_checks_skipped > 0

    def test_no_deadline_counters_without_time_limit(self):
        result = solve_cnf(_pigeonhole(5, 4))
        assert result.stats.deadline_checks_skipped == 0

    def test_forced_learned_clause_reduction(self):
        solver = CdclSolver(
            _pigeonhole(6, 5), reduce_min_learned=1, learned_limit_base=1
        )
        result = solver.solve()
        assert result.is_unsat
        assert result.stats.deleted_clauses > 0

    def test_forced_reduction_keeps_incremental_solver_sound(self):
        solver = CdclSolver(reduce_min_learned=1, learned_limit_base=1)
        solver.add_cnf(_pigeonhole(6, 5))
        assert solver.solve().is_unsat
        assert solver.solve().is_unsat


class TestRestartsAndLearning:
    def test_hard_instance_triggers_restarts_and_learning(self):
        result = solve_cnf(_pigeonhole(7, 6))
        assert result.is_unsat
        assert result.stats.learned_clauses > 0
        assert result.stats.restarts >= 1

    def test_solver_reusable_after_unsat(self):
        solver = CdclSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve().is_unsat
        # Once the formula itself is unsat every later call stays unsat.
        assert solver.solve().is_unsat
