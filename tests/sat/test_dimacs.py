"""Unit tests for DIMACS reading and writing."""

import pytest

from repro.errors import CnfError
from repro.sat.cnf import Cnf
from repro.sat.dimacs import dimacs_string, parse_dimacs, write_dimacs


def _sample_cnf() -> Cnf:
    cnf = Cnf()
    cnf.add_comment("sample")
    cnf.add_clause([1, -2])
    cnf.add_clause([2, 3])
    cnf.add_unit(-3)
    return cnf


class TestWrite:
    def test_string_output_contains_header_and_clauses(self):
        text = dimacs_string(_sample_cnf())
        lines = text.strip().splitlines()
        assert lines[0] == "c sample"
        assert lines[1] == "p cnf 3 3"
        assert lines[2] == "1 -2 0"
        assert lines[-1] == "-3 0"

    def test_write_to_path(self, tmp_path):
        path = tmp_path / "formula.cnf"
        write_dimacs(_sample_cnf(), path)
        assert path.read_text().startswith("c sample")

    def test_write_to_stream(self, tmp_path):
        path = tmp_path / "formula.cnf"
        with open(path, "w") as stream:
            write_dimacs(_sample_cnf(), stream)
        assert "p cnf 3 3" in path.read_text()


class TestParse:
    def test_round_trip(self):
        original = _sample_cnf()
        parsed = parse_dimacs(dimacs_string(original))
        assert parsed.as_lists() == original.as_lists()
        assert parsed.num_variables == original.num_variables

    def test_parse_from_path(self, tmp_path):
        path = tmp_path / "f.cnf"
        write_dimacs(_sample_cnf(), path)
        parsed = parse_dimacs(path)
        assert parsed.num_clauses == 3

    def test_parse_from_path_string(self, tmp_path):
        path = tmp_path / "f.cnf"
        write_dimacs(_sample_cnf(), path)
        parsed = parse_dimacs(str(path))
        assert parsed.num_clauses == 3

    def test_clause_spanning_multiple_lines(self):
        parsed = parse_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert parsed.as_lists() == [[1, 2, 3]]

    def test_missing_trailing_zero_is_tolerated(self):
        parsed = parse_dimacs("p cnf 2 1\n1 -2\n")
        assert parsed.as_lists() == [[1, -2]]

    def test_comments_preserved(self):
        parsed = parse_dimacs("c hello world\np cnf 1 1\n1 0\n")
        assert "hello world" in parsed.comments

    def test_clause_count_mismatch_adds_warning(self):
        parsed = parse_dimacs("p cnf 1 5\n1 0\n")
        assert any("warning" in comment for comment in parsed.comments)

    def test_malformed_problem_line(self):
        with pytest.raises(CnfError):
            parse_dimacs("p cnf x y\n")

    def test_non_integer_token(self):
        with pytest.raises(CnfError):
            parse_dimacs("p cnf 2 1\n1 foo 0\n")

    def test_header_reserves_variables(self):
        parsed = parse_dimacs("p cnf 10 1\n1 0\n")
        assert parsed.num_variables == 10
