"""Property-based tests: the CDCL solver against the DPLL reference oracle.

The most effective way to catch propagation / conflict-analysis bugs in a
SAT solver is differential testing on random formulas.  Hypothesis
generates random CNF instances; the fast CDCL engine and the slow-but-
obviously-correct DPLL engine must agree on satisfiability, and every model
returned by either engine must actually satisfy the formula.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sat.cnf import Cnf
from repro.sat.dpll import DpllSolver
from repro.sat.solver import CdclSolver

MAX_VARIABLES = 10


@st.composite
def random_cnf(draw) -> list[list[int]]:
    """A random CNF over at most MAX_VARIABLES variables."""
    num_variables = draw(st.integers(min_value=1, max_value=MAX_VARIABLES))
    num_clauses = draw(st.integers(min_value=0, max_value=30))
    clauses: list[list[int]] = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=4))
        clause = [
            draw(st.integers(min_value=1, max_value=num_variables))
            * draw(st.sampled_from([1, -1]))
            for _ in range(width)
        ]
        clauses.append(clause)
    return clauses


def _model_satisfies(model: dict[int, bool], clauses: list[list[int]]) -> bool:
    return all(
        any(model.get(abs(literal), False) == (literal > 0) for literal in clause)
        for clause in clauses
    )


@given(random_cnf())
@settings(max_examples=150, deadline=None)
def test_cdcl_agrees_with_dpll(clauses):
    cdcl = CdclSolver()
    dpll = DpllSolver()
    for clause in clauses:
        cdcl.add_clause(clause)
        dpll.add_clause(clause)
    fast = cdcl.solve()
    slow = dpll.solve()
    assert fast.is_sat == slow.is_sat
    if fast.is_sat:
        assert _model_satisfies(fast.model, clauses)
    if slow.is_sat:
        assert _model_satisfies(slow.model, clauses)


@given(random_cnf(), st.lists(st.integers(min_value=1, max_value=MAX_VARIABLES), max_size=4))
@settings(max_examples=100, deadline=None)
def test_assumptions_behave_like_units(clauses, assumption_variables):
    """Solving under assumptions must equal solving with the units added."""
    assumptions = [variable for variable in dict.fromkeys(assumption_variables)]
    with_assumptions = CdclSolver()
    with_units = CdclSolver()
    for clause in clauses:
        with_assumptions.add_clause(clause)
        with_units.add_clause(clause)
    for literal in assumptions:
        with_units.add_clause([literal])
    assert with_assumptions.solve(assumptions).is_sat == with_units.solve().is_sat


@given(random_cnf())
@settings(max_examples=60, deadline=None)
def test_solving_twice_is_consistent(clauses):
    """The incremental interface must give the same verdict on repeated calls."""
    solver = CdclSolver()
    for clause in clauses:
        solver.add_clause(clause)
    first = solver.solve()
    second = solver.solve()
    assert first.is_sat == second.is_sat


@given(random_cnf(), random_cnf())
@settings(max_examples=80, deadline=None)
def test_incremental_resolve_after_add_clause(first_batch, second_batch):
    """Adding clauses after a solve call must behave like a fresh solver.

    This exercises the incremental surfaces of the optimised engine: the
    variable-order heap, watcher lists and learned clauses all survive the
    first call and must not corrupt the second.
    """
    incremental = CdclSolver()
    for clause in first_batch:
        incremental.add_clause(clause)
    incremental.solve()
    for clause in second_batch:
        incremental.add_clause(clause)
    fresh = CdclSolver()
    for clause in first_batch + second_batch:
        fresh.add_clause(clause)
    result = incremental.solve()
    assert result.is_sat == fresh.solve().is_sat
    if result.is_sat:
        assert _model_satisfies(result.model, first_batch + second_batch)


@given(random_cnf(), st.lists(st.integers(min_value=1, max_value=MAX_VARIABLES), max_size=3))
@settings(max_examples=60, deadline=None)
def test_assumptions_after_incremental_additions(clauses, assumption_variables):
    """Assumption solving must stay sound when interleaved with add_clause."""
    assumptions = list(dict.fromkeys(assumption_variables))
    solver = CdclSolver()
    oracle = DpllSolver()
    for index, clause in enumerate(clauses):
        solver.add_clause(clause)
        oracle.add_clause(clause)
        if index % 7 == 3:
            solver.solve(assumptions)  # interleaved call; must not corrupt state
    for literal in assumptions:
        oracle.add_clause([literal])
    assert solver.solve(assumptions).is_sat == oracle.solve().is_sat


@given(random_cnf())
@settings(max_examples=60, deadline=None)
def test_learned_clause_reduction_preserves_verdicts(clauses):
    """Forcing learned-clause reduction must not change any verdict.

    ``reduce_min_learned=1`` and ``learned_limit_base=1`` make
    ``_reduce_learned`` fire after virtually every conflict, so clause
    deletion, slot recycling and watcher detaching are all exercised.
    """
    aggressive = CdclSolver(reduce_min_learned=1, learned_limit_base=1)
    oracle = DpllSolver()
    for clause in clauses:
        aggressive.add_clause(clause)
        oracle.add_clause(clause)
    result = aggressive.solve()
    assert result.is_sat == oracle.solve().is_sat
    if result.is_sat:
        assert _model_satisfies(result.model, clauses)


@given(random_cnf())
@settings(max_examples=60, deadline=None)
def test_cnf_evaluate_agrees_with_model(clauses):
    """Cnf.evaluate must accept every model the solver returns."""
    cnf = Cnf()
    for clause in clauses:
        cnf.add_clause(clause)
    result = CdclSolver(cnf).solve()
    if result.is_sat:
        assignment = {
            variable: result.model.get(variable, False)
            for variable in range(1, cnf.num_variables + 1)
        }
        assert cnf.evaluate(assignment)
