"""Property tests for the root-level simplification engine.

Bounded variable elimination rewrites the formula into an equisatisfiable
one over fewer variables, so every invariant here is about what must
survive the rewrite: reconstructed models still satisfy the *original*
clauses, vivification only ever strengthens, chronological backtracking
changes the search trajectory but never a verdict or the soundness of an
assumption core, and frozen variables are untouchable.  Everything is
cross-checked against the DPLL oracle on random incremental
add/solve/assume sequences — the same discipline the inprocessing suite
uses, pointed at the three new techniques.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sat.dpll import DpllSolver
from repro.sat.instances import pigeonhole, random_3sat
from repro.sat.solver import CdclSolver

MAX_VARIABLES = 12


@st.composite
def random_cnf(draw, max_clauses: int = 40) -> list[list[int]]:
    num_variables = draw(st.integers(min_value=1, max_value=MAX_VARIABLES))
    num_clauses = draw(st.integers(min_value=0, max_value=max_clauses))
    clauses: list[list[int]] = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=4))
        clauses.append(
            [
                draw(st.integers(min_value=1, max_value=num_variables))
                * draw(st.sampled_from([1, -1]))
                for _ in range(width)
            ]
        )
    return clauses


def _aggressive(**overrides) -> CdclSolver:
    """A solver tuned so inprocessing (and with it BVE/vivify) fires early."""
    options = dict(
        reduce_min_learned=8,
        learned_limit_base=8,
        restart_base=4,
        inprocess_interval=16,
    )
    options.update(overrides)
    return CdclSolver(**options)


def _satisfies(model: dict[int, bool], clauses: list[list[int]]) -> bool:
    return all(
        any(model.get(abs(lit), False) == (lit > 0) for lit in clause)
        for clause in clauses
    )


# ---------------------------------------------------------------------------
# BVE: model reconstruction
# ---------------------------------------------------------------------------
@given(random_cnf())
@settings(max_examples=80, deadline=None)
def test_bve_models_satisfy_the_original_clauses(clauses):
    """simplify() may eliminate variables; the model handed back must still
    satisfy every clause as originally added, via the reconstruction stack."""
    solver = _aggressive(bve=True, bve_grow=2)
    dpll = DpllSolver()
    for clause in clauses:
        solver.add_clause(clause)
        dpll.add_clause(clause)
    solver.simplify()
    result = solver.solve()
    assert result.is_sat == dpll.solve().is_sat
    if result.is_sat:
        assert _satisfies(result.model, clauses)


def test_bve_eliminates_and_reconstructs_on_pigeonhole_sat():
    solver = _aggressive(bve=True)
    instance = random_3sat(30, 100, seed=7)
    for clause in instance.clauses:
        solver.add_clause(clause)
    solver.simplify()
    reference = DpllSolver()
    for clause in instance.clauses:
        reference.add_clause(clause)
    result = solver.solve()
    assert result.is_sat == reference.solve().is_sat
    if result.is_sat:
        assert _satisfies(result.model, [c for c in instance.clauses])


@given(random_cnf(max_clauses=25))
@settings(max_examples=60, deadline=None)
def test_restore_on_mention_keeps_later_clauses_sound(clauses):
    """Adding a clause over an eliminated variable restores it; the verdict
    and models must match an oracle that saw every clause up front."""
    if not clauses:
        return
    split = max(1, len(clauses) // 2)
    first, second = clauses[:split], clauses[split:]
    solver = _aggressive(bve=True)
    for clause in first:
        solver.add_clause(clause)
    solver.simplify()
    for clause in second:
        solver.add_clause(clause)
    dpll = DpllSolver()
    for clause in clauses:
        dpll.add_clause(clause)
    result = solver.solve()
    assert result.is_sat == dpll.solve().is_sat
    if result.is_sat:
        assert _satisfies(result.model, clauses)


# ---------------------------------------------------------------------------
# frozen-variable discipline
# ---------------------------------------------------------------------------
@given(
    random_cnf(),
    st.sets(st.integers(min_value=1, max_value=MAX_VARIABLES), max_size=6),
)
@settings(max_examples=60, deadline=None)
def test_frozen_variables_are_never_eliminated(clauses, frozen):
    solver = _aggressive(bve=True)
    for clause in clauses:
        solver.add_clause(clause)
    solver.freeze(frozen)
    solver.simplify()
    for variable in frozen:
        assert not solver._eliminated[variable], (
            f"frozen variable {variable} was eliminated"
        )
    result = solver.solve()
    if result.is_sat:
        assert _satisfies(result.model, clauses)


@given(
    random_cnf(max_clauses=25),
    st.lists(
        st.integers(min_value=1, max_value=MAX_VARIABLES).map(
            lambda v: v if v % 2 else -v
        ),
        max_size=4,
    ),
)
@settings(max_examples=60, deadline=None)
def test_assumption_cores_stay_sound_after_elimination(clauses, assumptions):
    """Assumptions may name variables BVE removed; solve() restores them and
    the reported core (formula + core as units) must still be UNSAT."""
    solver = _aggressive(bve=True)
    for clause in clauses:
        solver.add_clause(clause)
    solver.simplify()
    dpll = DpllSolver()
    for clause in clauses:
        dpll.add_clause(clause)
    for literal in assumptions:
        dpll.add_clause([literal])
    result = solver.solve(assumptions=assumptions)
    assert result.is_sat == dpll.solve().is_sat
    if not result.is_sat:
        core = solver.failed_assumptions()
        assert set(core) <= set(assumptions)
        check = DpllSolver()
        for clause in clauses:
            check.add_clause(clause)
        for literal in core:
            check.add_clause([literal])
        assert not check.solve().is_sat


# ---------------------------------------------------------------------------
# vivification: strengthening only
# ---------------------------------------------------------------------------
@given(random_cnf())
@settings(max_examples=80, deadline=None)
def test_vivification_preserves_verdicts_and_models(clauses):
    solver = _aggressive(vivify=True, bve=False)
    dpll = DpllSolver()
    for clause in clauses:
        solver.add_clause(clause)
        dpll.add_clause(clause)
    solver.simplify()
    result = solver.solve()
    assert result.is_sat == dpll.solve().is_sat
    if result.is_sat:
        assert _satisfies(result.model, clauses)


def test_vivification_strengthens_a_redundant_clause():
    # (x1 v x2) and (x1 v ~x2) force x1 one propagation step after ~x1 is
    # probed, so (x1 v x3 v x4) collapses to x1 — a strengthening only the
    # unit-propagation probe finds (no clause subsumes the candidate).
    solver = CdclSolver(vivify=True, bve=False)
    solver.add_clause([1, 2])
    solver.add_clause([1, -2])
    solver.add_clause([1, 3, 4])  # vivifiable: ~1 is unit-refutable
    solver.simplify()
    assert solver.stats.vivified_clauses + solver.stats.root_simplified >= 1
    assert solver.solve().is_sat


# ---------------------------------------------------------------------------
# chronological backtracking
# ---------------------------------------------------------------------------
@given(
    st.lists(random_cnf(max_clauses=15), min_size=1, max_size=4),
    st.lists(
        st.lists(
            st.integers(min_value=1, max_value=MAX_VARIABLES), max_size=3
        ),
        min_size=1,
        max_size=4,
    ),
)
@settings(max_examples=60, deadline=None)
def test_chrono_agrees_with_dpll_on_incremental_sequences(batches, assumption_sets):
    """Chronological backtracking (forced on every conflict via chrono=1)
    must agree with the oracle on random add/solve/assume sequences, and
    its UNSAT cores must stay sound."""
    solver = _aggressive(chrono=1)
    reference: list[list[int]] = []
    for index, batch in enumerate(batches):
        for clause in batch:
            solver.add_clause(clause)
            reference.append(clause)
        assumptions = [
            variable if variable % 2 else -variable
            for variable in assumption_sets[index % len(assumption_sets)]
        ]
        dpll = DpllSolver()
        for clause in reference:
            dpll.add_clause(clause)
        for literal in assumptions:
            dpll.add_clause([literal])
        expected = dpll.solve().is_sat
        got = solver.solve(assumptions=assumptions)
        assert got.is_sat == expected
        if not got.is_sat:
            core = solver.failed_assumptions()
            check = DpllSolver()
            for clause in reference:
                check.add_clause(clause)
            for literal in core:
                check.add_clause([literal])
            assert not check.solve().is_sat


def test_chrono_fires_and_preserves_the_pigeonhole_verdict():
    solver = CdclSolver(chrono=1, restart_base=4)
    for clause in pigeonhole(7, 6).clauses:
        solver.add_clause(clause)
    assert not solver.solve().is_sat
    assert solver.stats.chrono_backtracks > 0


def test_rephasing_fires_and_preserves_verdicts():
    solver = CdclSolver(rephase=8, restart_base=4)
    for clause in pigeonhole(7, 6).clauses:
        solver.add_clause(clause)
    assert not solver.solve().is_sat
    assert solver.stats.rephases > 0
    sat = CdclSolver(rephase=8, restart_base=4)
    instance = random_3sat(25, 80, seed=11)
    for clause in instance.clauses:
        sat.add_clause(clause)
    result = sat.solve()
    reference = DpllSolver()
    for clause in instance.clauses:
        reference.add_clause(clause)
    assert result.is_sat == reference.solve().is_sat
