"""Unit tests for DIMACS literal helpers."""

import pytest

from repro.errors import CnfError
from repro.sat.literals import (
    check_literal,
    lit_is_positive,
    lit_to_var,
    negate,
    var_to_lit,
)


class TestCheckLiteral:
    def test_accepts_positive_and_negative_integers(self):
        assert check_literal(5) == 5
        assert check_literal(-3) == -3

    def test_rejects_zero(self):
        with pytest.raises(CnfError):
            check_literal(0)

    def test_rejects_booleans(self):
        with pytest.raises(CnfError):
            check_literal(True)

    def test_rejects_non_integers(self):
        with pytest.raises(CnfError):
            check_literal("x1")


class TestNegate:
    def test_negates_positive(self):
        assert negate(7) == -7

    def test_negates_negative(self):
        assert negate(-7) == 7

    def test_double_negation_is_identity(self):
        assert negate(negate(11)) == 11


class TestLitToVar:
    def test_strips_sign(self):
        assert lit_to_var(9) == 9
        assert lit_to_var(-9) == 9


class TestLitIsPositive:
    def test_polarity(self):
        assert lit_is_positive(4) is True
        assert lit_is_positive(-4) is False


class TestVarToLit:
    def test_positive_polarity(self):
        assert var_to_lit(6) == 6
        assert var_to_lit(6, positive=True) == 6

    def test_negative_polarity(self):
        assert var_to_lit(6, positive=False) == -6

    def test_rejects_non_positive_variables(self):
        with pytest.raises(CnfError):
            var_to_lit(0)
        with pytest.raises(CnfError):
            var_to_lit(-2)

    def test_rejects_boolean_variable(self):
        with pytest.raises(CnfError):
            var_to_lit(True)
