"""Unit tests for Boolean expressions and the Tseitin encoding."""

import itertools

import pytest

from repro.errors import CnfError
from repro.sat.cnf import Cnf
from repro.sat.solver import CdclSolver
from repro.sat.tseitin import (
    BoolExpr,
    TseitinEncoder,
    and_,
    const,
    iff,
    implies,
    maj,
    not_,
    or_,
    var,
    xor_,
)


class TestExpressionConstruction:
    def test_var_requires_name(self):
        with pytest.raises(CnfError):
            BoolExpr("var")

    def test_const_requires_value(self):
        with pytest.raises(CnfError):
            BoolExpr("const")

    def test_unknown_kind_rejected(self):
        with pytest.raises(CnfError):
            BoolExpr("nand")

    def test_not_arity(self):
        with pytest.raises(CnfError):
            BoolExpr("not", (var("a"), var("b")))

    def test_maj_arity(self):
        with pytest.raises(CnfError):
            BoolExpr("maj", (var("a"), var("b")))

    def test_variables_collection(self):
        expression = and_(var("a"), or_(var("b"), not_(var("c"))))
        assert expression.variables() == {"a", "b", "c"}


class TestEvaluation:
    def test_basic_gates(self):
        env = {"a": True, "b": False, "c": True}
        assert and_(var("a"), var("c")).evaluate(env) is True
        assert and_(var("a"), var("b")).evaluate(env) is False
        assert or_(var("b"), var("c")).evaluate(env) is True
        assert xor_(var("a"), var("c")).evaluate(env) is False
        assert not_(var("b")).evaluate(env) is True
        assert maj(var("a"), var("b"), var("c")).evaluate(env) is True
        assert const(False).evaluate(env) is False

    def test_implies_and_iff(self):
        env_true = {"a": True, "b": True}
        env_false = {"a": True, "b": False}
        assert implies(var("a"), var("b")).evaluate(env_true) is True
        assert implies(var("a"), var("b")).evaluate(env_false) is False
        assert iff(var("a"), var("b")).evaluate(env_true) is True
        assert iff(var("a"), var("b")).evaluate(env_false) is False

    def test_missing_variable_raises(self):
        with pytest.raises(CnfError):
            var("missing").evaluate({})


def _assert_encoding_matches(expression, names):
    """The Tseitin encoding must be satisfiable exactly when the expression
    evaluates to true, for every assignment of the inputs."""
    for bits in itertools.product([False, True], repeat=len(names)):
        env = dict(zip(names, bits))
        encoder = TseitinEncoder(Cnf())
        encoder.assert_true(expression)
        solver = CdclSolver(encoder.cnf)
        assumptions = [
            encoder.input_literal(name) if value else -encoder.input_literal(name)
            for name, value in env.items()
        ]
        result = solver.solve(assumptions)
        assert result.is_sat == expression.evaluate(env), (env, expression)


class TestTseitinEncoding:
    def test_and_or_not(self):
        _assert_encoding_matches(and_(var("a"), or_(var("b"), not_(var("c")))), ["a", "b", "c"])

    def test_xor_chain(self):
        _assert_encoding_matches(xor_(var("a"), var("b"), var("c"), var("d")), list("abcd"))

    def test_majority(self):
        _assert_encoding_matches(maj(var("a"), var("b"), var("c")), list("abc"))

    def test_iff_and_implies(self):
        _assert_encoding_matches(iff(var("a"), implies(var("b"), var("c"))), list("abc"))

    def test_constants(self):
        encoder = TseitinEncoder()
        literal = encoder.encode(const(True))
        solver = CdclSolver(encoder.cnf)
        assert solver.solve([literal]).is_sat
        assert solver.solve([-literal]).is_unsat

    def test_assert_false(self):
        encoder = TseitinEncoder()
        encoder.assert_false(and_(var("a"), var("b")))
        solver = CdclSolver(encoder.cnf)
        a = encoder.input_literal("a")
        b = encoder.input_literal("b")
        assert solver.solve([a, b]).is_unsat
        assert solver.solve([a, -b]).is_sat

    def test_single_input_xor(self):
        _assert_encoding_matches(xor_(var("a")), ["a"])

    def test_inputs_mapping_is_stable(self):
        encoder = TseitinEncoder()
        first = encoder.input_literal("a")
        second = encoder.input_literal("a")
        assert first == second
        assert encoder.inputs == {"a": first}
