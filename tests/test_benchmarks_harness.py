"""Smoke tests for the tracked benchmark harness (``benchmarks/run_bench.py``).

The full instance set is far too slow for CI; the ``--quick`` subset runs
both engines on the smallest instances in a couple of seconds and still
checks the load-bearing invariants: verdicts match between the frozen
legacy engine and the current one, and the report schema is stable.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def run_bench():
    spec = importlib.util.spec_from_file_location(
        "run_bench", ROOT / "benchmarks" / "run_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    sys.modules["run_bench"] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def quick_report(run_bench):
    return run_bench.run_benchmarks(quick=True)


class TestQuickMode:
    def test_verdicts_match_between_engines(self, quick_report):
        assert quick_report["all_verdicts_match"] is True
        for row in quick_report["instances"]:
            assert row["verdict_match"] is True

    def test_report_schema(self, quick_report):
        assert quick_report["mode"] == "quick"
        assert quick_report["geometric_mean_speedup"] > 0
        names = {row["name"] for row in quick_report["instances"]}
        assert "fig2_p4" in names
        assert "php_7_6" in names
        for row in quick_report["instances"]:
            for engine in ("legacy", "current"):
                assert row[engine]["seconds"] >= 0
                assert row[engine]["verdict"]

    def test_report_is_json_serializable(self, quick_report):
        json.dumps(quick_report)

    def test_quick_is_a_strict_subset(self, run_bench):
        instances = run_bench.instance_set()
        quick = [instance for instance in instances if instance.quick]
        assert 0 < len(quick) < len(instances)


class TestBenchNumbering:
    def test_first_index_is_one(self, run_bench, tmp_path):
        assert run_bench.next_bench_path(tmp_path).name == "BENCH_1.json"

    def test_next_free_index_is_used(self, run_bench, tmp_path):
        (tmp_path / "BENCH_1.json").write_text("{}")
        (tmp_path / "BENCH_2.json").write_text("{}")
        assert run_bench.next_bench_path(tmp_path).name == "BENCH_3.json"

    def test_gaps_are_filled(self, run_bench, tmp_path):
        (tmp_path / "BENCH_2.json").write_text("{}")
        assert run_bench.next_bench_path(tmp_path).name == "BENCH_1.json"


class TestPortfolioScenario:
    def test_quick_report_contains_portfolio_section(self, quick_report):
        portfolio = quick_report["portfolio"]
        assert portfolio["suite"] == "smoke"
        assert portfolio["results_match"] is True
        assert set(portfolio["jobs"]) == {"1", "2"}
        for run in portfolio["jobs"].values():
            assert run["seconds"] >= 0
            assert run["solved"] >= 1
        assert {task["name"] for task in portfolio["tasks"]} == {"fig2_p4", "c17_p4"}

    def test_portfolio_bench_verdict_mismatch_detection(self, run_bench):
        # Same tasks at both widths: results must match and the speedup is
        # the ratio of the two wall-clock times.
        report = run_bench.run_portfolio_bench(quick=True, jobs_list=(1, 1))
        assert report["results_match"] is True
        assert report["speedup"] > 0

    def test_portfolio_bench_fails_on_error_records(self, run_bench, monkeypatch):
        # Identically crashing workers at every width must not read as a
        # vacuous "results match".
        from repro.pebbling.portfolio import PortfolioTask

        monkeypatch.setattr(
            run_bench, "tasks_from_suite",
            lambda suite, **kwargs: [PortfolioTask("no-such-workload", 4,
                                                   time_limit=5)],
        )
        report = run_bench.run_portfolio_bench(quick=True, jobs_list=(1, 1))
        assert report["results_match"] is False


class TestCubesScenario:
    def test_quick_report_contains_cubes_section(self, quick_report):
        cubes = quick_report["cubes"]
        assert cubes["cubes_ok"] is True
        assert cubes["jobs"] == 4 and cubes["count"] == 4
        assert cubes["host_cores"] >= 1
        assert isinstance(cubes["oversubscribed"], bool)
        # Quick mode runs the easy cases only: parity is the whole gate
        # (hard cases and the win count are full-run concerns).
        assert {case["name"] for case in cubes["cases"]} == {"fig2_p4", "c17_p4"}
        for case in cubes["cases"]:
            assert case["parity"] is True
            assert not case["hard"]
            assert case["sequential"]["seconds"] >= 0
            assert case["cubed"]["seconds"] >= 0


class TestCompileScenario:
    def test_quick_report_contains_compile_section(self, quick_report):
        compile_scenario = quick_report["compile"]
        assert compile_scenario["all_verified"] is True
        names = {case["name"] for case in compile_scenario["cases"]}
        assert names == {"fig2_p4", "fig2_p4_mct", "c17_p4_mct"}
        for case in compile_scenario["cases"]:
            assert case["outcome"] == "solution"
            assert case["verified"] is True
            assert case["gates"] > 0 and case["t_count"] >= 0

    def test_schema_version_is_ten(self, quick_report):
        assert quick_report["schema_version"] == 10

    def test_quick_report_contains_profile_section(self, quick_report):
        profile = quick_report["profile"]
        assert profile["phases_present"] is True
        names = {row["name"] for row in profile["instances"]}
        assert "fig2_p4" in names
        assert "php_7_6" in names
        for row in profile["instances"]:
            assert set(row["phases"]) == {
                "propagate", "analyze", "reduce", "inprocess", "bve", "vivify"
            }
            shares = [phase["share"] for phase in row["phases"].values()]
            assert all(0.0 <= share <= 1.0 for share in shares)
            assert row["conflicts_per_sec"] >= 0
            assert "conflicts" not in row["counters"]
            assert row["counters"]["learned_clauses"] >= 0

    def test_scenario_selector(self, run_bench):
        assert run_bench.parse_scenarios(None) == list(run_bench.SCENARIOS)
        assert run_bench.parse_scenarios("profile,engine") == [
            "engine", "profile"
        ]
        with pytest.raises(SystemExit):
            run_bench.parse_scenarios("bogus")
        with pytest.raises(SystemExit):
            run_bench.parse_scenarios(" , ")

    def test_scenario_subset_report_only_contains_selection(self, run_bench):
        report = run_bench.run_benchmarks(
            quick=True, scenarios=["backends"]
        )
        assert report["scenarios"] == ["backends"]
        assert "instances" not in report
        assert "portfolio" not in report
        assert report["all_verdicts_match"] is True

    def test_trajectory_gate(self, run_bench, tmp_path):
        # No previous report: vacuous pass.
        record = run_bench.check_trajectory(2.0, tmp_path)
        assert record["ok"] is True and record["previous"] is None
        (tmp_path / "BENCH_1.json").write_text(
            json.dumps({"geometric_mean_speedup": 2.0})
        )
        assert run_bench.check_trajectory(1.9, tmp_path)["ok"] is True
        bad = run_bench.check_trajectory(1.5, tmp_path)
        assert bad["ok"] is False
        assert bad["previous"] == "BENCH_1.json"
        assert bad["ratio"] == 0.75
        # The newest index wins, and corrupt files pass vacuously.
        (tmp_path / "BENCH_2.json").write_text("not json")
        assert run_bench.check_trajectory(0.1, tmp_path)["ok"] is True

    def test_quick_compile_cases_are_a_strict_subset(self, run_bench):
        quick = [case for case in run_bench.COMPILE_CASES if case[4]]
        assert 0 < len(quick) < len(run_bench.COMPILE_CASES)


class TestBackendScenario:
    def test_quick_report_compares_backends(self, quick_report):
        scenario = quick_report["backends"]
        assert scenario["verdicts_match"] is True
        names = {case["name"] for case in scenario["cases"]}
        assert names == {"fig2_p4", "fig2_p3", "c17_p4"}
        for case in scenario["cases"]:
            assert case["ok"] is True
            assert "cdcl" in case["runs"]
            assert "external-stub" in case["runs"]
            verdicts = {
                (run["verdict"], run["steps"]) for run in case["runs"].values()
            }
            assert len(verdicts) == 1

    def test_dpll_runs_only_small_cases(self, quick_report):
        by_name = {
            case["name"]: case for case in quick_report["backends"]["cases"]
        }
        assert "dpll" in by_name["fig2_p4"]["runs"]
        assert "dpll" not in by_name["c17_p4"]["runs"]


class TestSimplifyScenario:
    def test_quick_report_contains_simplify_section(self, quick_report, run_bench):
        scenario = quick_report["simplify"]
        assert scenario["simplify_ok"] is True
        names = {case["name"] for case in scenario["cases"]}
        assert names == {"fig2_p4", "c17_p4"}
        configs = {label for label, _ in run_bench.SIMPLIFY_CONFIGS}
        for case in scenario["cases"]:
            assert case["ok"] is True
            assert set(case["runs"]) == configs
            verdicts = {
                (run["verdict"], run["steps"]) for run in case["runs"].values()
            }
            assert len(verdicts) == 1
            for run in case["runs"].values():
                assert run["seconds"] >= 0
                assert set(run["counters"]) == {
                    "eliminated_variables", "restored_variables",
                    "bve_resolvents", "vivified_clauses",
                    "chrono_backtracks", "rephases",
                }
        # Ablations are attributed relative to the full engine.
        assert set(scenario["attribution"]) == configs - {"full"}
        for record in scenario["attribution"].values():
            assert record["seconds"] >= 0
            assert record["vs_full"] is None or record["vs_full"] > 0

    def test_quick_simplify_cases_are_a_strict_subset(self, run_bench):
        quick = [case for case in run_bench.SIMPLIFY_CASES if case[5]]
        assert 0 < len(quick) < len(run_bench.SIMPLIFY_CASES)

    def test_direct_cnf_cases_are_full_runs_only(self, run_bench):
        # The CNF cases exist to engage the techniques for real, which
        # takes second-scale solves — too slow for the smoke lane.
        assert run_bench.SIMPLIFY_CNF_CASES
        assert all(not case[2] for case in run_bench.SIMPLIFY_CNF_CASES)


class TestCoreGuidedScenario:
    def test_quick_report_compares_core_guided_refine(self, quick_report):
        scenario = quick_report["core_guided"]
        assert scenario["core_ok"] is True
        for case in scenario["cases"]:
            assert case["ok"] is True
            assert (
                case["core_guided"]["sat_calls"] <= case["plain"]["sat_calls"]
            )
        # The acceptance bar: the ladder cores must save calls strictly on
        # at least one case, not just break even everywhere.
        assert scenario["strictly_fewer_cases"] >= 1


class TestCacheScenario:
    def test_quick_report_contains_cache_section(self, quick_report):
        cache_scenario = quick_report["cache"]
        assert cache_scenario["cache_ok"] is True
        assert {case["workload"] for case in cache_scenario["cases"]} == {
            "fig2", "c17"
        }
        for case in cache_scenario["cases"]:
            assert case["ok"] is True
            # The acceptance bar: warm-started geometric-refine searches
            # must issue strictly fewer SAT calls than cold ones.
            assert case["warm"]["sat_calls"] < case["cold"]["sat_calls"]
            assert case["hit"]["byte_identical"] is True
            assert case["steps"] is not None

    def test_quick_cache_cases_are_a_strict_subset(self, run_bench):
        quick = [case for case in run_bench.CACHE_CASES if case[4]]
        assert 0 < len(quick) < len(run_bench.CACHE_CASES)


class TestChaosScenario:
    def test_quick_report_certifies_minima_under_faults(self, quick_report):
        scenario = quick_report["chaos"]
        assert scenario["chaos_ok"] is True
        assert scenario["suite"] == "smoke"
        for task in scenario["tasks"]:
            assert task["ok"] is True
            assert task["chaos_verdict"] == task["verdict"]
            assert task["chaos_steps"] == task["steps"]
            # flaky=1 guarantees every task's first attempt failed
            assert task["retries"] >= 1
        assert scenario["retry_attempts"] >= len(scenario["tasks"])
        assert scenario["spurious_timeouts_certified"] is True

    def test_deadline_probe_degrades_to_a_partial(self, quick_report):
        probe = quick_report["chaos"]["deadline_probe"]
        assert probe["ok"] is True
        assert probe["status"] == "ok"
        assert probe["outcome"] == "timeout"
        checkpoint = probe["partial"]["checkpoint"]
        assert set(checkpoint) == {"next_bound", "refuted_through", "known_sat"}
