"""Tests for the end-to-end compilation pipeline."""

import json

import pytest

from repro.errors import CircuitError
from repro.circuits import (
    CompilationReport,
    compile_dag,
    compile_workload,
    pareto_sweep,
    verify_compiled_against_network,
)
from repro.circuits.compile import compile_strategy, network_controls
from repro.pebbling import EncodingOptions, bennett_strategy
from repro.workloads import example_dag, example_network


class TestCompileWorkload:
    def test_fig2_report_is_verified_and_serialisable(self):
        report = compile_workload("fig2", pebbles=4, time_limit=30)
        assert report.found
        assert report.outcome == "solution"
        assert report.verified is True
        assert report.verify_patterns == 64  # exhaustive: 2^6 inputs
        assert report.pebbles_used == 4
        assert report.qubits == 6 + 4  # inputs + work qubits
        assert report.gates == report.moves
        data = json.loads(json.dumps(report.as_dict()))
        assert data["workload"] == "fig2"
        assert data["verified"] is True
        assert "strategy" not in data and "circuit" not in data

    def test_fig2_decomposed_is_verified_with_elementary_gates(self):
        report = compile_workload("fig2", pebbles=4, decompose=True,
                                  time_limit=30)
        assert report.found and report.verified is True
        assert report.decomposed is True
        assert all(gate.num_controls <= 2 for gate in report.circuit.gates)
        # Elementary counts: every gate is its own Toffoli equivalent.
        assert report.toffoli_equivalents == report.gates

    def test_structural_workload_compiles_without_verification(self):
        report = compile_workload("hadamard", pebbles=8, time_limit=30)
        assert report.found
        assert report.verified is None  # no LogicNetwork behind the SLP DAG
        assert report.qubits is not None and report.gates is not None

    def test_structural_workload_cannot_be_decomposed(self):
        with pytest.raises(CircuitError):
            compile_workload("hadamard", pebbles=8, decompose=True,
                             time_limit=30)

    def test_infeasible_budget_reports_outcome_without_circuit(self):
        report = compile_workload("fig2", pebbles=2, time_limit=10)
        assert not report.found
        assert report.outcome == "infeasible"
        assert report.qubits is None and report.verified is None

    def test_single_move_strategy_compiles_one_gate_per_step(self):
        report = compile_workload("fig2", pebbles=6, single_move=True,
                                  time_limit=60)
        assert report.found
        assert report.gates == report.steps == report.moves

    def test_c17_compiles_and_verifies(self):
        report = compile_workload("c17", pebbles=4, decompose=True,
                                  time_limit=60)
        assert report.found and report.verified is True

    def test_bench_file_path_compiles_with_network(self, tmp_path):
        from repro.logic.bench import write_bench
        from repro.logic.iscas import c17_network

        path = tmp_path / "c17.bench"
        write_bench(c17_network(), path)
        report = compile_workload(str(path), pebbles=4, time_limit=60)
        assert report.found and report.verified is True


class TestWeightedPipeline:
    def test_weighted_budget_reaches_the_sat_encoding(self):
        # With E weighing 3, the weighted game needs a budget of 6 where
        # the unweighted game needs 4 pebbles; budget 4 must fail even
        # though 4 *pebbles* would succeed.
        dag = example_dag()
        dag.node("E").weight = 3.0
        network = example_network()
        blocked = compile_dag(dag, pebbles=4, network=network, weighted=True,
                              time_limit=30, max_steps=12)
        assert not blocked.found
        report = compile_dag(dag, pebbles=6, network=network, weighted=True,
                             decompose=True, time_limit=30)
        assert report.found
        assert report.weighted is True
        assert report.weight_used <= 6.0
        assert report.verified is True

    def test_weighted_unit_weights_match_unweighted_compile(self):
        weighted = compile_workload("fig2", pebbles=4, weighted=True,
                                    time_limit=30)
        plain = compile_workload("fig2", pebbles=4, time_limit=30)
        assert weighted.found and plain.found
        assert weighted.steps == plain.steps
        assert weighted.gates == plain.gates


class TestVerification:
    def test_verification_catches_a_wrong_circuit(self):
        # Compile fig2 against a network whose E gate differs (OR vs AND):
        # the verifier must produce a counter-example.
        from repro.logic import LogicNetwork

        dag = example_dag()
        network = example_network()
        wrong = LogicNetwork("fig2_wrong")
        for index in range(6):
            wrong.add_input(f"x{index}")
        wrong.add_gate("A", "AND", ["x0", "x1"])
        wrong.add_gate("B", "XOR", ["x2", "x3"])
        wrong.add_gate("C", "OR", ["A", "x4"])
        wrong.add_gate("D", "NAND", ["B", "x5"])
        wrong.add_gate("E", "OR", ["C", "D"])  # example_network uses AND
        wrong.add_gate("F", "XOR", ["A", "x4"])
        wrong.add_output("E")
        wrong.add_output("F")
        strategy = bennett_strategy(dag)
        compiled = compile_strategy(
            dag, strategy, provider=network_controls(network)
        )
        # Against the network it was compiled from: fine.
        assert verify_compiled_against_network(network, compiled) == 64
        with pytest.raises(CircuitError):
            verify_compiled_against_network(wrong, compiled)

    def test_random_sampling_kicks_in_for_wide_networks(self):
        report = compile_workload("c17", pebbles=4, time_limit=60,
                                  max_verify_patterns=8)
        assert report.found and report.verified is True
        assert report.verify_patterns == 8  # c17 has 5 inputs = 32 patterns


class TestParetoSweep:
    def test_fig2_sweep_marks_the_pareto_front(self):
        report = pareto_sweep("fig2", time_limit=30)
        assert report.workload == "fig2"
        budgets = [point.budget for point in report.points]
        assert budgets == sorted(budgets)
        solved = [point for point in report.points if point.found]
        assert solved, "the eager-Bennett anchor budget must be solvable"
        front = report.pareto_front()
        assert front
        # Front points must not dominate each other: qubits strictly
        # increase while gates strictly decrease (or stay equal on ties).
        for first, second in zip(front, front[1:]):
            assert second.qubits > first.qubits
            assert second.gates < first.gates
        data = json.loads(json.dumps(report.as_dict()))
        assert data["points"][0]["budget"] == budgets[0]

    def test_explicit_budgets_and_jobs(self):
        report = pareto_sweep("fig2", budgets=[4, 5], jobs=2, time_limit=30)
        assert [point.budget for point in report.points] == [4, 5]
        assert all(point.found for point in report.points)

    def test_weighted_sweep_reports_weight(self):
        report = pareto_sweep("fig2", budgets=[4], weighted=True,
                              time_limit=30)
        assert report.weighted is True
        point = report.points[0]
        assert point.found and point.weight_used == 4.0
