"""Unit tests for the reversible circuit container."""

import pytest

from repro.errors import CircuitError
from repro.circuits import QubitRole, ReversibleCircuit, SingleTargetGate, ToffoliGate


def _small_circuit() -> ReversibleCircuit:
    circuit = ReversibleCircuit("demo")
    circuit.add_qubits(["x0", "x1"], QubitRole.INPUT)
    circuit.add_qubit("a0", QubitRole.ANCILLA)
    circuit.add_qubit("y", QubitRole.OUTPUT)
    circuit.append(ToffoliGate.from_names("a0", ["x0", "x1"]))
    circuit.append(ToffoliGate.from_names("y", ["a0"]))
    circuit.append(ToffoliGate.from_names("a0", ["x0", "x1"]))
    return circuit


class TestQubits:
    def test_roles_and_counts(self):
        circuit = _small_circuit()
        assert circuit.num_qubits == 4
        assert circuit.num_inputs == 2
        assert circuit.num_ancillae == 1
        assert circuit.num_outputs == 1
        assert circuit.qubits(QubitRole.INPUT) == ["x0", "x1"]

    def test_role_accepts_strings(self):
        circuit = ReversibleCircuit()
        circuit.add_qubit("q", "input")
        assert circuit.qubit("q").role is QubitRole.INPUT

    def test_duplicate_qubit_rejected(self):
        circuit = ReversibleCircuit()
        circuit.add_qubit("q")
        with pytest.raises(CircuitError):
            circuit.add_qubit("q")

    def test_unknown_qubit_lookup(self):
        with pytest.raises(CircuitError):
            ReversibleCircuit().qubit("nope")

    def test_has_qubit(self):
        circuit = _small_circuit()
        assert circuit.has_qubit("x0")
        assert not circuit.has_qubit("zz")


class TestGates:
    def test_append_and_iterate(self):
        circuit = _small_circuit()
        assert circuit.num_gates == 3
        assert len(list(circuit)) == 3
        assert len(circuit) == 3

    def test_gate_with_unknown_qubit_rejected(self):
        circuit = ReversibleCircuit()
        circuit.add_qubit("a")
        with pytest.raises(CircuitError):
            circuit.append(ToffoliGate.from_names("a", ["ghost"]))

    def test_extend(self):
        circuit = ReversibleCircuit()
        circuit.add_qubits(["a", "b"], QubitRole.INPUT)
        circuit.add_qubit("t", QubitRole.OUTPUT)
        circuit.extend([
            ToffoliGate.from_names("t", ["a"]),
            ToffoliGate.from_names("t", ["b"]),
        ])
        assert circuit.num_gates == 2


class TestReports:
    def test_gate_histogram(self):
        circuit = _small_circuit()
        circuit.append(SingleTargetGate("y", ("x0", "x1"), None, label="xor2"))
        histogram = circuit.gate_histogram()
        assert histogram["toffoli2"] == 2
        assert histogram["toffoli1"] == 1
        assert histogram["xor2"] == 1

    def test_summary(self):
        summary = _small_circuit().summary()
        assert summary["qubits"] == 4
        assert summary["gates"] == 3
        assert summary["ancillae"] == 1

    def test_repr(self):
        assert "demo" in repr(_small_circuit())
