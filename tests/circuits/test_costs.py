"""Tests for the circuit cost model."""

from repro.circuits import (
    CostModel,
    QubitRole,
    ReversibleCircuit,
    SingleTargetGate,
    ToffoliGate,
    barenco_and_oracle,
    circuit_cost,
)


class TestCostModel:
    def test_elementary_gates_cost_one(self):
        model = CostModel()
        assert model.toffoli_equivalents(ToffoliGate("t")) == 1
        assert model.toffoli_equivalents(ToffoliGate.from_names("t", ["a"])) == 1
        assert model.toffoli_equivalents(ToffoliGate.from_names("t", ["a", "b"])) == 1

    def test_large_toffoli_uses_barenco_count(self):
        model = CostModel()
        gate = ToffoliGate.from_names("t", ["a", "b", "c", "d", "e"])
        assert model.toffoli_equivalents(gate) == 4 * (5 - 2)

    def test_single_target_gate_scaling(self):
        model = CostModel(stg_control_factor=3)
        gate = SingleTargetGate("t", ("a", "b", "c", "d"), None)
        assert model.toffoli_equivalents(gate) == 3 * 3

    def test_t_count(self):
        model = CostModel()
        assert model.t_count(ToffoliGate.from_names("t", ["a"])) == 0
        assert model.t_count(ToffoliGate.from_names("t", ["a", "b"])) == 7
        assert model.t_count(ToffoliGate.from_names("t", ["a", "b", "c"])) == 4 * 7


class TestCircuitCost:
    def test_aggregation(self):
        circuit = ReversibleCircuit()
        circuit.add_qubits(["a", "b"], QubitRole.INPUT)
        circuit.add_qubit("t", QubitRole.OUTPUT)
        circuit.append(ToffoliGate.from_names("t", ["a", "b"]))
        circuit.append(ToffoliGate.from_names("t", ["a"]))
        cost = circuit_cost(circuit)
        assert cost.qubits == 3
        assert cost.gates == 2
        assert cost.toffoli_equivalents == 2
        assert cost.t_count == 7
        assert cost.as_dict()["gates"] == 2

    def test_barenco_oracle_cost(self):
        cost = circuit_cost(barenco_and_oracle(9))
        assert cost.gates == 48
        assert cost.toffoli_equivalents == 48
        assert cost.t_count == 48 * 7

    def test_custom_model(self):
        circuit = ReversibleCircuit()
        circuit.add_qubits(["a", "b"], QubitRole.INPUT)
        circuit.add_qubit("t", QubitRole.OUTPUT)
        circuit.append(ToffoliGate.from_names("t", ["a", "b"]))
        cost = circuit_cost(circuit, CostModel(toffoli_t_count=4))
        assert cost.t_count == 4
