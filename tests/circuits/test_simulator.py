"""Tests for the classical reversible-circuit simulator."""

import pytest

from repro.errors import CircuitError
from repro.circuits import (
    QubitRole,
    ReversibleCircuit,
    SingleTargetGate,
    ToffoliGate,
    compile_network_oracle,
)
from repro.circuits.simulator import (
    simulate_circuit,
    verify_ancillae_clean,
    verify_oracle_circuit,
)
from repro.logic import LogicNetwork


def _toffoli_circuit() -> ReversibleCircuit:
    circuit = ReversibleCircuit("toffoli")
    circuit.add_qubits(["a", "b"], QubitRole.INPUT)
    circuit.add_qubit("t", QubitRole.OUTPUT)
    circuit.append(ToffoliGate.from_names("t", ["a", "b"]))
    return circuit


class TestSimulateCircuit:
    def test_toffoli_truth_table(self):
        circuit = _toffoli_circuit()
        for a in (False, True):
            for b in (False, True):
                final = simulate_circuit(circuit, {"a": a, "b": b})
                assert final["t"] == (a and b)
                assert final["a"] == a and final["b"] == b

    def test_single_target_gate_semantics(self):
        circuit = ReversibleCircuit()
        circuit.add_qubits(["a", "b"], QubitRole.INPUT)
        circuit.add_qubit("t", QubitRole.OUTPUT)
        circuit.append(SingleTargetGate("t", ("a", "b"), lambda v: v["a"] ^ v["b"], label="xor"))
        assert simulate_circuit(circuit, {"a": True, "b": False})["t"] is True
        assert simulate_circuit(circuit, {"a": True, "b": True})["t"] is False

    def test_double_application_uncomputes(self):
        circuit = _toffoli_circuit()
        circuit.append(ToffoliGate.from_names("t", ["a", "b"]))
        final = simulate_circuit(circuit, {"a": True, "b": True})
        assert final["t"] is False

    def test_missing_input_value_raises(self):
        with pytest.raises(CircuitError):
            simulate_circuit(_toffoli_circuit(), {"a": True})

    def test_initial_values_override(self):
        circuit = _toffoli_circuit()
        final = simulate_circuit(circuit, {"a": False, "b": False}, initial_values={"t": True})
        assert final["t"] is True

    def test_initial_values_unknown_qubit(self):
        with pytest.raises(CircuitError):
            simulate_circuit(_toffoli_circuit(), {"a": False, "b": False},
                             initial_values={"zz": True})


class TestAncillaChecks:
    def test_clean_circuit_passes(self):
        circuit = ReversibleCircuit()
        circuit.add_qubit("x", QubitRole.INPUT)
        circuit.add_qubit("a", QubitRole.ANCILLA)
        circuit.add_qubit("y", QubitRole.OUTPUT)
        circuit.append(ToffoliGate.from_names("a", ["x"]))
        circuit.append(ToffoliGate.from_names("y", ["a"]))
        circuit.append(ToffoliGate.from_names("a", ["x"]))
        assert verify_ancillae_clean(circuit, {"x": True})
        assert verify_ancillae_clean(circuit, {"x": False})

    def test_dirty_circuit_detected(self):
        """Forgetting the uncompute gate (Fig. 1(a)) leaves the ancilla dirty."""
        circuit = ReversibleCircuit()
        circuit.add_qubit("x", QubitRole.INPUT)
        circuit.add_qubit("a", QubitRole.ANCILLA)
        circuit.add_qubit("y", QubitRole.OUTPUT)
        circuit.append(ToffoliGate.from_names("a", ["x"]))
        circuit.append(ToffoliGate.from_names("y", ["a"]))
        assert not verify_ancillae_clean(circuit, {"x": True})


class TestVerifyOracle:
    def _xor_network(self) -> LogicNetwork:
        network = LogicNetwork("xor3")
        network.add_inputs(["a", "b", "c"])
        network.add_gate("t", "XOR", ["a", "b"])
        network.add_gate("y", "XOR", ["t", "c"])
        network.add_output("y")
        return network

    def test_verifies_correct_oracle(self):
        network = self._xor_network()
        compiled = compile_network_oracle(network)
        assert verify_oracle_circuit(
            compiled.circuit,
            network,
            input_map={n: compiled.input_qubits[n] for n in network.inputs},
            output_map={"y": compiled.output_qubits["y"]},
        )

    def test_detects_wrong_output(self):
        network = self._xor_network()
        compiled = compile_network_oracle(network)
        wrong_reference = LogicNetwork("and3")
        wrong_reference.add_inputs(["a", "b", "c"])
        wrong_reference.add_gate("t", "AND", ["a", "b"])
        wrong_reference.add_gate("y", "AND", ["t", "c"])
        wrong_reference.add_output("y")
        with pytest.raises(CircuitError):
            verify_oracle_circuit(
                compiled.circuit,
                wrong_reference,
                input_map={n: compiled.input_qubits[n] for n in network.inputs},
                output_map={"y": compiled.output_qubits["y"]},
            )

    def test_detects_dirty_ancilla(self):
        network = self._xor_network()
        compiled = compile_network_oracle(network)
        # Remove the final uncompute gate to leave the ancilla dirty.
        broken = ReversibleCircuit("broken")
        for name in compiled.circuit.qubits():
            broken.add_qubit(name, compiled.circuit.qubit(name).role)
        for gate in compiled.circuit.gates[:-1]:
            broken.append(gate)
        with pytest.raises(CircuitError):
            verify_oracle_circuit(
                broken,
                network,
                input_map={n: compiled.input_qubits[n] for n in network.inputs},
                output_map={"y": compiled.output_qubits["y"]},
            )

    def test_callable_reference_and_pattern_limit(self):
        circuit = _toffoli_circuit()
        assert verify_oracle_circuit(
            circuit,
            lambda values: {"t": values["a"] and values["b"]},
            input_map={"a": "a", "b": "b"},
            output_map={"t": "t"},
            max_patterns=2,
        )
