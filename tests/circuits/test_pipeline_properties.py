"""Property-based end-to-end fidelity tests of the compilation pipeline.

For every bundled workload backed by a :class:`~repro.logic.LogicNetwork`
(see :func:`repro.workloads.list_network_workloads`), the compiled
reversible circuit must agree with plain network evaluation on random
input assignments — with and without the Barenco MCT decomposition.  The
compilation itself is deterministic per workload, so circuits are built
once and cached (via the eager-Bennett strategy for the big Table I
instances, which needs no SAT search, and via the SAT pipeline for the
small trio) and hypothesis drives the input patterns.
"""

from __future__ import annotations

from functools import lru_cache

from hypothesis import given, settings, strategies as st

from repro.circuits.barenco import decompose_circuit
from repro.circuits.circuit import QubitRole
from repro.circuits.compile import compile_strategy, network_controls
from repro.circuits.simulator import simulate_circuit
from repro.pebbling import ReversiblePebblingSolver, eager_bennett_strategy
from repro.workloads import (
    list_network_workloads,
    load_workload,
    load_workload_network,
)

#: Big Table I instances are compiled at a reduced scale so building the
#: synthetic network and the Bennett circuit stays fast; Boolean fidelity
#: does not depend on instance size.
_SCALES = {
    "b4_m5": 0.5, "b5_m7": 0.5, "b6_m7": 0.25, "b8_m7": 0.25,
    "b10_m7": 0.2, "b12_m7": 0.2, "b16_m23": 0.125,
    "c432": 0.5, "c499": 0.5, "c880": 0.3, "c1355": 0.5, "c1908": 0.5,
    "c2670": 0.2, "c3540": 0.15, "c5315": 0.1, "c6288": 0.1, "c7552": 0.1,
}

WORKLOADS = list_network_workloads()

#: Feasible SAT budgets for the small trio exercised through the solver.
_SAT_BUDGETS = {"fig2": 4, "and9": 5, "c17": 4}


def _check_fidelity(network, compiled, circuit, pattern, workload):
    """One input pattern: circuit outputs == network values, clean ancillae."""
    assignment = {
        name: bool((pattern >> position) & 1)
        for position, name in enumerate(network.inputs)
    }
    values = network.simulate(assignment)
    circuit_inputs = {
        qubit: assignment[name] for name, qubit in compiled.input_qubits.items()
    }
    final = simulate_circuit(circuit, circuit_inputs)
    for node, qubit in compiled.output_qubits.items():
        assert final[qubit] == bool(values[str(node)]), (workload, node)
    for qubit in circuit.qubits(QubitRole.ANCILLA):
        assert not final[qubit], (workload, qubit, "dirty ancilla")
    for qubit, value in circuit_inputs.items():
        assert final[qubit] == value, (workload, qubit, "input modified")


@lru_cache(maxsize=None)
def _bennett_compiled(workload: str, decompose: bool):
    scale = _SCALES.get(workload, 1.0)
    dag = load_workload(workload, scale=scale)
    network = load_workload_network(workload, scale=scale)
    assert network is not None
    strategy = eager_bennett_strategy(dag)
    compiled = compile_strategy(
        dag, strategy, provider=network_controls(network)
    )
    circuit = (
        decompose_circuit(compiled.circuit) if decompose else compiled.circuit
    )
    return network, compiled, circuit


@lru_cache(maxsize=None)
def _sat_compiled(workload: str, decompose: bool):
    dag = load_workload(workload)
    network = load_workload_network(workload)
    assert network is not None
    result = ReversiblePebblingSolver(dag).solve(
        _SAT_BUDGETS[workload], time_limit=60
    )
    assert result.found
    compiled = compile_strategy(
        dag, result.strategy, provider=network_controls(network)
    )
    circuit = (
        decompose_circuit(compiled.circuit) if decompose else compiled.circuit
    )
    return network, compiled, circuit


@given(
    workload=st.sampled_from(WORKLOADS),
    decompose=st.booleans(),
    pattern=st.integers(min_value=0),
)
@settings(max_examples=60, deadline=None)
def test_compiled_circuit_matches_network_evaluation(
    workload, decompose, pattern
):
    network, compiled, circuit = _bennett_compiled(workload, decompose)
    _check_fidelity(network, compiled, circuit, pattern, workload)


@given(
    workload=st.sampled_from(sorted(_SAT_BUDGETS)),
    decompose=st.booleans(),
    pattern=st.integers(min_value=0),
)
@settings(max_examples=30, deadline=None)
def test_sat_pipeline_circuit_matches_network_evaluation(
    workload, decompose, pattern
):
    """The SAT-pebbled pipeline (not just Bennett) is Boolean-exact too."""
    network, compiled, circuit = _sat_compiled(workload, decompose)
    _check_fidelity(network, compiled, circuit, pattern, workload)
