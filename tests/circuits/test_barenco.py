"""Tests for the Barenco multi-controlled Toffoli decomposition."""

import itertools

import pytest

from repro.errors import CircuitError
from repro.circuits import QubitRole, ReversibleCircuit, barenco_and_oracle, decompose_mct
from repro.circuits.simulator import simulate_circuit, verify_oracle_circuit


def _simulate_decomposition(controls, target, ancillae, gates, control_values, ancilla_values):
    """Simulate a Toffoli gate list on one basis state; return final values."""
    circuit = ReversibleCircuit("decomposition")
    circuit.add_qubits(controls, QubitRole.INPUT)
    circuit.add_qubits(ancillae, QubitRole.ANCILLA)
    circuit.add_qubit(target, QubitRole.OUTPUT)
    for gate in gates:
        circuit.append(gate)
    initial = dict(zip(ancillae, ancilla_values))
    return simulate_circuit(circuit, dict(zip(controls, control_values)), initial_values=initial)


class TestDecomposeMct:
    def test_small_gates_are_returned_unchanged(self):
        assert len(decompose_mct(["a"], "t", [])) == 1
        assert len(decompose_mct(["a", "b"], "t", [])) == 1
        assert decompose_mct([], "t", [])[0].num_controls == 0

    @pytest.mark.parametrize("num_controls", [3, 4, 5])
    def test_lemma_7_2_gate_count(self, num_controls):
        controls = [f"c{i}" for i in range(num_controls)]
        ancillae = [f"a{i}" for i in range(num_controls - 2)]
        gates = decompose_mct(controls, "t", ancillae)
        assert len(gates) == 4 * (num_controls - 2)
        assert all(gate.num_controls <= 2 for gate in gates)

    @pytest.mark.parametrize("num_controls", [3, 4, 5])
    def test_lemma_7_2_functional_with_dirty_ancillae(self, num_controls):
        """The decomposition must compute AND of all controls and restore the
        borrowed ancillae for every initial ancilla value."""
        controls = [f"c{i}" for i in range(num_controls)]
        ancillae = [f"a{i}" for i in range(num_controls - 2)]
        gates = decompose_mct(controls, "t", ancillae)
        for control_values in itertools.product([False, True], repeat=num_controls):
            for ancilla_values in itertools.product([False, True], repeat=len(ancillae)):
                final = _simulate_decomposition(
                    controls, "t", ancillae, gates, control_values, ancilla_values
                )
                assert final["t"] == all(control_values)
                for name, initial in zip(ancillae, ancilla_values):
                    assert final[name] == initial, "borrowed ancilla not restored"

    @pytest.mark.parametrize("num_controls", [4, 5, 6, 7])
    def test_lemma_7_3_functional_with_single_dirty_ancilla(self, num_controls):
        controls = [f"c{i}" for i in range(num_controls)]
        gates = decompose_mct(controls, "t", ["anc"])
        assert all(gate.num_controls <= 2 for gate in gates)
        for control_values in itertools.product([False, True], repeat=num_controls):
            for ancilla_value in (False, True):
                final = _simulate_decomposition(
                    controls, "t", ["anc"], gates, control_values, [ancilla_value]
                )
                assert final["t"] == all(control_values)
                assert final["anc"] == ancilla_value

    def test_no_ancilla_for_large_gate_rejected(self):
        with pytest.raises(CircuitError):
            decompose_mct(["a", "b", "c"], "t", [])

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(CircuitError):
            decompose_mct(["a", "b"], "a", [])
        with pytest.raises(CircuitError):
            decompose_mct(["a", "b", "c"], "t", ["a"])


class TestBarencoAndOracle:
    def test_nine_input_oracle_matches_fig6_numbers(self):
        """Fig. 6(d): 11 qubits in total and 48 gates."""
        circuit = barenco_and_oracle(9)
        assert circuit.num_qubits == 11
        assert circuit.num_gates == 48
        assert circuit.num_ancillae == 1

    def test_nine_input_oracle_is_functionally_correct(self):
        circuit = barenco_and_oracle(9)
        verify_oracle_circuit(
            circuit,
            lambda values: {"h": all(values[f"x{i}"] for i in range(9))},
            input_map={f"x{i}": f"x{i}" for i in range(9)},
            output_map={"h": "h"},
        )

    @pytest.mark.parametrize("num_inputs", [2, 3, 5])
    def test_small_oracles(self, num_inputs):
        circuit = barenco_and_oracle(num_inputs)
        verify_oracle_circuit(
            circuit,
            lambda values: {"h": all(values[f"x{i}"] for i in range(num_inputs))},
            input_map={f"x{i}": f"x{i}" for i in range(num_inputs)},
            output_map={"h": "h"},
        )

    def test_rejects_single_input(self):
        with pytest.raises(CircuitError):
            barenco_and_oracle(1)


class TestSingleTargetLowering:
    """ANF lowering of single-target gates to Toffoli gates."""

    @staticmethod
    def _lowered_matches(function, num_controls, extra_qubits=2):
        from repro.circuits import single_target_gate_to_mct
        from repro.circuits.gates import SingleTargetGate

        controls = [f"c{i}" for i in range(num_controls)]
        spares = [f"s{i}" for i in range(extra_qubits)]
        gate = SingleTargetGate("t", tuple(controls), function)
        gates = single_target_gate_to_mct(gate, controls + spares + ["t"])
        assert all(g.num_controls <= 2 for g in gates)
        for bits in itertools.product([False, True], repeat=num_controls):
            for spare_bits in itertools.product([False, True], repeat=extra_qubits):
                values = dict(zip(controls, bits))
                final = _simulate_decomposition(
                    controls, "t", spares, gates, bits, spare_bits
                )
                assert final["t"] == bool(function(values)), (bits, spare_bits)
                # Borrowed qubits must be restored.
                assert tuple(final[s] for s in spares) == spare_bits

    def test_and_gate(self):
        self._lowered_matches(lambda v: all(v.values()), 3)

    def test_or_gate(self):
        self._lowered_matches(lambda v: any(v.values()), 3)

    def test_xor_gate(self):
        self._lowered_matches(
            lambda v: sum(v.values()) % 2 == 1, 4
        )

    def test_majority_gate(self):
        self._lowered_matches(lambda v: sum(v.values()) >= 2, 3)

    def test_constant_true_becomes_a_not(self):
        from repro.circuits import single_target_gate_to_mct
        from repro.circuits.gates import SingleTargetGate

        gate = SingleTargetGate("t", (), lambda values: True)
        gates = single_target_gate_to_mct(gate, ["t"])
        assert len(gates) == 1 and gates[0].num_controls == 0

    def test_structural_gate_rejected(self):
        from repro.circuits import single_target_gate_to_mct
        from repro.circuits.gates import SingleTargetGate

        gate = SingleTargetGate("t", ("a",), None)
        with pytest.raises(CircuitError):
            single_target_gate_to_mct(gate, ["a", "t"])


class TestDecomposeCircuit:
    def test_negative_control_toffoli_is_conjugated(self):
        from repro.circuits import decompose_circuit
        from repro.circuits.gates import ToffoliGate

        circuit = ReversibleCircuit("neg")
        circuit.add_qubits(["a", "b", "c", "d"], QubitRole.INPUT)
        circuit.add_qubit("t", QubitRole.OUTPUT)
        circuit.append(ToffoliGate.from_names("t", ["a", "b", "c"], negated=["b"]))
        lowered = decompose_circuit(circuit)
        assert all(g.num_controls <= 2 for g in lowered.gates)
        for bits in itertools.product([False, True], repeat=4):
            values = dict(zip(["a", "b", "c", "d"], bits))
            final = simulate_circuit(lowered, values)
            expected = values["a"] and not values["b"] and values["c"]
            assert final["t"] == expected

    def test_preserves_qubit_roles_and_names(self):
        from repro.circuits import compile_network_oracle, decompose_circuit
        from repro.workloads import example_network

        compiled = compile_network_oracle(example_network())
        lowered = decompose_circuit(compiled.circuit)
        assert lowered.qubits() == compiled.circuit.qubits()
        for name in lowered.qubits():
            assert lowered.qubit(name).role is compiled.circuit.qubit(name).role
