"""Unit tests for the reversible gate types."""

import pytest

from repro.errors import CircuitError
from repro.circuits import SingleTargetGate, ToffoliGate


class TestSingleTargetGate:
    def test_basic_properties(self):
        gate = SingleTargetGate("t", ("a", "b"), lambda v: v["a"] and v["b"], label="and2")
        assert gate.num_controls == 2
        assert gate.qubits() == ("a", "b", "t")
        assert "and2" in str(gate)

    def test_evaluate(self):
        gate = SingleTargetGate("t", ("a", "b"), lambda v: v["a"] ^ v["b"])
        assert gate.evaluate({"a": True, "b": False}) is True
        assert gate.evaluate({"a": True, "b": True}) is False

    def test_evaluate_without_function_raises(self):
        gate = SingleTargetGate("t", ("a",), None, label="opaque")
        with pytest.raises(CircuitError):
            gate.evaluate({"a": True})

    def test_target_cannot_be_control(self):
        with pytest.raises(CircuitError):
            SingleTargetGate("t", ("t", "a"), None)

    def test_duplicate_controls_rejected(self):
        with pytest.raises(CircuitError):
            SingleTargetGate("t", ("a", "a"), None)


class TestToffoliGate:
    def test_from_names_and_polarities(self):
        gate = ToffoliGate.from_names("t", ["a", "b", "c"], negated=["b"])
        assert gate.num_controls == 3
        assert dict(gate.controls) == {"a": True, "b": False, "c": True}
        assert gate.control_names() == ("a", "b", "c")
        assert gate.qubits() == ("a", "b", "c", "t")

    def test_evaluate_with_mixed_polarities(self):
        gate = ToffoliGate.from_names("t", ["a", "b"], negated=["b"])
        assert gate.evaluate({"a": True, "b": False}) is True
        assert gate.evaluate({"a": True, "b": True}) is False
        assert gate.evaluate({"a": False, "b": False}) is False

    def test_not_and_cnot_special_cases(self):
        x_gate = ToffoliGate("t")
        assert x_gate.num_controls == 0
        assert x_gate.evaluate({}) is True
        assert str(x_gate) == "X(t)"
        cnot = ToffoliGate.from_names("t", ["c"])
        assert cnot.evaluate({"c": True}) is True
        assert cnot.evaluate({"c": False}) is False

    def test_negated_controls_shown_in_str(self):
        gate = ToffoliGate.from_names("t", ["a", "b"], negated=["a"])
        assert "!a" in str(gate)

    def test_unknown_negated_control_rejected(self):
        with pytest.raises(CircuitError):
            ToffoliGate.from_names("t", ["a"], negated=["z"])

    def test_target_cannot_be_control(self):
        with pytest.raises(CircuitError):
            ToffoliGate.from_names("t", ["t"])

    def test_duplicate_controls_rejected(self):
        with pytest.raises(CircuitError):
            ToffoliGate("t", (("a", True), ("a", False)))

    def test_as_single_target_gate(self):
        gate = ToffoliGate.from_names("t", ["a", "b"], negated=["b"])
        stg = gate.as_single_target_gate()
        assert stg.target == "t"
        assert stg.controls == ("a", "b")
        assert stg.evaluate({"a": True, "b": False}) is True
        assert stg.evaluate({"a": True, "b": True}) is False
