"""Tests for the strategy-to-circuit compiler."""

import itertools

import pytest

from repro.errors import CircuitError
from repro.circuits import compile_bennett, compile_network_oracle, compile_strategy
from repro.circuits.compile import dag_controls, network_controls
from repro.circuits.simulator import verify_oracle_circuit
from repro.logic import LogicNetwork
from repro.logic.iscas import c17_network
from repro.pebbling import bennett_strategy, eager_bennett_strategy, pebble_dag
from repro.workloads import load_workload
from repro.workloads.registry import and_tree_network


class TestQubitAccounting:
    def test_bennett_compilation_uses_inputs_plus_pebbles(self):
        network = and_tree_network(9)
        compiled = compile_network_oracle(network)
        strategy = bennett_strategy(network.to_dag())
        assert compiled.num_qubits == 9 + strategy.max_pebbles  # 17 qubits (Fig. 6(b))
        assert compiled.num_gates == strategy.num_moves         # 15 gates

    def test_pebbled_compilation_respects_budget(self):
        network = and_tree_network(9)
        dag = network.to_dag()
        result = pebble_dag(dag, 7, time_limit=60)
        compiled = compile_network_oracle(network, result.strategy)
        assert compiled.num_qubits == 9 + result.strategy.max_pebbles
        assert compiled.num_qubits <= 16                          # Fig. 6(c) budget
        assert compiled.num_gates == result.strategy.num_moves

    def test_structural_compilation_counts_only_work_qubits(self, and9_dag):
        """With the structural provider (no logic network) there are no
        primary-input qubits, only one work qubit per pebble."""
        compiled = compile_bennett(and9_dag)
        assert compiled.num_qubits == bennett_strategy(and9_dag).max_pebbles
        assert compiled.num_gates == bennett_strategy(and9_dag).num_moves

    def test_output_qubits_reported(self, fig2_dag):
        compiled = compile_bennett(fig2_dag)
        assert set(compiled.output_qubits) == {"E", "F"}
        for qubit in compiled.output_qubits.values():
            assert compiled.circuit.qubit(qubit).role.value == "output"

    def test_each_move_becomes_one_gate(self, fig2_dag):
        strategy = eager_bennett_strategy(fig2_dag)
        compiled = compile_strategy(fig2_dag, strategy)
        assert compiled.num_gates == strategy.num_moves

    def test_strategy_for_different_dag_rejected(self, fig2_dag, and9_dag):
        strategy = bennett_strategy(and9_dag)
        with pytest.raises(CircuitError):
            compile_strategy(fig2_dag, strategy)


class TestControlProviders:
    def test_dag_controls_provider(self, fig2_dag):
        provider = dag_controls(fig2_dag)
        controls = provider("E")
        assert controls.controls == ("C", "D")
        assert controls.function is None
        assert controls.label == "E"

    def test_network_controls_resolves_inverters(self):
        network = LogicNetwork("inv")
        network.add_inputs(["a", "b"])
        network.add_gate("na", "NOT", ["a"])
        network.add_gate("g", "AND", ["na", "b"])
        network.add_output("g")
        provider = network_controls(network)
        controls = provider("g")
        # The inverter collapses: the gate reads primary input 'a' directly.
        assert set(controls.controls) == {"a", "b"}
        assert controls.function({"a": False, "b": True}) is True
        assert controls.function({"a": True, "b": True}) is False

    def test_network_controls_folds_constants(self):
        network = LogicNetwork("const")
        network.add_input("a")
        network.add_gate("one", "CONST1", [])
        network.add_gate("g", "XOR", ["a", "one"])
        network.add_output("g")
        provider = network_controls(network)
        controls = provider("g")
        assert controls.controls == ("a",)
        assert controls.function({"a": False}) is True


class TestEndToEndOracles:
    def test_and9_bennett_oracle(self):
        network = and_tree_network(9)
        compiled = compile_network_oracle(network)
        output = network.outputs[0]
        verify_oracle_circuit(
            compiled.circuit,
            network,
            input_map={name: compiled.input_qubits[name] for name in network.inputs},
            output_map={output: compiled.output_qubits[output]},
        )

    def test_and9_pebbled_oracle_with_16_qubit_budget(self):
        network = and_tree_network(9)
        dag = network.to_dag()
        result = pebble_dag(dag, 7, time_limit=60)
        compiled = compile_network_oracle(network, result.strategy)
        assert compiled.num_qubits <= 16
        output = network.outputs[0]
        verify_oracle_circuit(
            compiled.circuit,
            network,
            input_map={name: compiled.input_qubits[name] for name in network.inputs},
            output_map={output: compiled.output_qubits[output]},
        )

    def test_c17_bennett_oracle_is_correct_on_all_patterns(self):
        network = c17_network()
        compiled = compile_network_oracle(network)
        verify_oracle_circuit(
            compiled.circuit,
            network,
            input_map={name: compiled.input_qubits[name] for name in network.inputs},
            output_map={name: compiled.output_qubits[name] for name in network.outputs},
        )

    def test_c17_pebbled_oracle_is_correct(self):
        network = c17_network()
        dag = network.to_dag()
        result = pebble_dag(dag, 4, time_limit=60)
        assert result.found
        compiled = compile_network_oracle(network, result.strategy)
        verify_oracle_circuit(
            compiled.circuit,
            network,
            input_map={name: compiled.input_qubits[name] for name in network.inputs},
            output_map={name: compiled.output_qubits[name] for name in network.outputs},
        )

    def test_half_adder_oracle(self, half_adder_network):
        compiled = compile_network_oracle(half_adder_network)
        verify_oracle_circuit(
            compiled.circuit,
            half_adder_network,
            input_map={name: compiled.input_qubits[name]
                       for name in half_adder_network.inputs},
            output_map={name: compiled.output_qubits[name]
                        for name in half_adder_network.outputs},
        )

    def test_structural_compilation_of_slp_dag(self):
        """SLP DAGs have no Boolean functions; compilation still works and
        produces one gate per move with the dependency structure as controls."""
        dag = load_workload("hadamard")
        compiled = compile_bennett(dag)
        assert compiled.num_gates == bennett_strategy(dag).num_moves
        gate = compiled.circuit.gates[0]
        assert gate.function is None
