"""Tests for the ASCII strategy rendering."""

from repro.pebbling import bennett_strategy, pebble_dag
from repro.visualize import memory_profile_chart, render_strategy_grid, strategy_report


class TestGridRendering:
    def test_grid_dimensions(self, fig2_dag):
        strategy = bennett_strategy(fig2_dag)
        grid = render_strategy_grid(strategy, show_header=False)
        lines = grid.splitlines()
        # One row per node plus two footer rows with the step ruler.
        assert len(lines) == fig2_dag.num_nodes + 2
        # Each row shows one cell per configuration.
        first_row = lines[0].split(" ", 1)[1]
        assert len(first_row) == strategy.num_steps + 1

    def test_grid_marks_pebbled_cells(self, fig2_dag):
        strategy = bennett_strategy(fig2_dag)
        grid = render_strategy_grid(strategy, pebbled_char="#", empty_char=".")
        lines = {line.split()[0]: line.split()[1] for line in grid.splitlines()[2:-2]}
        # Node A is pebbled from step 1 and released only in the very last step.
        assert lines["A"].startswith(".#")
        assert lines["A"].endswith("#.")
        # Output E stays pebbled to the end.
        assert lines["E"].endswith("#")

    def test_header_mentions_metrics(self, fig2_dag):
        strategy = bennett_strategy(fig2_dag)
        grid = render_strategy_grid(strategy)
        assert "6 pebbles" in grid
        assert "10 steps" in grid

    def test_memory_profile_chart(self, fig2_dag):
        strategy = bennett_strategy(fig2_dag)
        chart = memory_profile_chart(strategy)
        assert "peak 6" in chart

    def test_strategy_report_contains_operations(self, fig2_dag):
        result = pebble_dag(fig2_dag, 4, time_limit=30)
        report = strategy_report(result.strategy)
        assert "operations executed" in report
        assert "peak pebbles" in report
        assert str(result.strategy.num_moves) in report
