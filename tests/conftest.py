"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.dag import Dag
from repro.logic import LogicNetwork
from repro.workloads import and_tree_dag, example_dag


@pytest.fixture
def fig2_dag() -> Dag:
    """The paper's Fig. 2 example DAG (6 nodes, outputs E and F)."""
    return example_dag()


@pytest.fixture
def and9_dag() -> Dag:
    """The Fig. 6(a) 9-input AND DAG (8 nodes, one output)."""
    return and_tree_dag(9)


@pytest.fixture
def chain_dag() -> Dag:
    """A 5-node chain: the worst case for pebble reuse."""
    dag = Dag("chain5")
    previous: list[str] = []
    for index in range(1, 6):
        dag.add_node(f"n{index}", previous)
        previous = [f"n{index}"]
    return dag


@pytest.fixture
def diamond_dag() -> Dag:
    """A diamond: one source feeding two middle nodes joined by a sink."""
    dag = Dag("diamond")
    dag.add_node("s", [])
    dag.add_node("l", ["s"])
    dag.add_node("r", ["s"])
    dag.add_node("t", ["l", "r"])
    return dag


@pytest.fixture
def half_adder_network() -> LogicNetwork:
    """A two-gate half adder used across logic/circuit tests."""
    network = LogicNetwork("half_adder")
    network.add_input("a")
    network.add_input("b")
    network.add_gate("sum", "XOR", ["a", "b"])
    network.add_gate("carry", "AND", ["a", "b"])
    network.add_output("sum")
    network.add_output("carry")
    return network
