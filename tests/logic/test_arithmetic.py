"""Functional verification of the gate-level arithmetic generators."""

import itertools

import pytest

from repro.errors import LogicNetworkError
from repro.logic import (
    modular_adder_network,
    modular_subtractor_network,
    ripple_carry_adder_network,
    ripple_carry_subtractor_network,
)


def _bus_assignment(prefix: str, value: int, bits: int) -> dict[str, bool]:
    return {f"{prefix}{i}": bool((value >> i) & 1) for i in range(bits)}


def _bus_value(outputs: dict[str, bool], names: list[str]) -> int:
    return sum(1 << index for index, name in enumerate(names) if outputs[name])


class TestRippleCarryAdder:
    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    @pytest.mark.parametrize("use_majority", [True, False])
    def test_exhaustive_addition(self, bits, use_majority):
        network = ripple_carry_adder_network(bits, use_majority=use_majority)
        sum_names = network.outputs[:-1]
        carry_name = network.outputs[-1]
        for a, b in itertools.product(range(1 << bits), repeat=2):
            assignment = {**_bus_assignment("a", a, bits), **_bus_assignment("b", b, bits)}
            outputs = network.simulate_outputs(assignment)
            value = _bus_value(outputs, sum_names) | (int(outputs[carry_name]) << bits)
            assert value == a + b, (bits, a, b)

    def test_without_carry_out(self):
        network = ripple_carry_adder_network(3, with_carry_out=False)
        assert len(network.outputs) == 3

    def test_rejects_zero_bits(self):
        with pytest.raises(LogicNetworkError):
            ripple_carry_adder_network(0)


class TestRippleCarrySubtractor:
    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    def test_exhaustive_subtraction_modulo_power_of_two(self, bits):
        network = ripple_carry_subtractor_network(bits, with_borrow_out=False)
        names = network.outputs
        for a, b in itertools.product(range(1 << bits), repeat=2):
            assignment = {**_bus_assignment("a", a, bits), **_bus_assignment("b", b, bits)}
            outputs = network.simulate_outputs(assignment)
            assert _bus_value(outputs, names) == (a - b) % (1 << bits), (bits, a, b)

    def test_no_borrow_flag_semantics(self):
        bits = 3
        network = ripple_carry_subtractor_network(bits, with_borrow_out=True)
        no_borrow = network.outputs[-1]
        for a, b in itertools.product(range(1 << bits), repeat=2):
            assignment = {**_bus_assignment("a", a, bits), **_bus_assignment("b", b, bits)}
            outputs = network.simulate_outputs(assignment)
            assert outputs[no_borrow] == (a >= b), (a, b)

    def test_rejects_zero_bits(self):
        with pytest.raises(LogicNetworkError):
            ripple_carry_subtractor_network(0)


class TestModularAdder:
    @pytest.mark.parametrize("bits,modulus", [(2, 3), (2, 4), (3, 5), (3, 7), (3, 8), (4, 11)])
    @pytest.mark.parametrize("use_majority", [True, False])
    def test_exhaustive_modular_addition(self, bits, modulus, use_majority):
        network = modular_adder_network(bits, modulus, use_majority=use_majority)
        names = network.outputs
        for a, b in itertools.product(range(modulus), repeat=2):
            assignment = {**_bus_assignment("a", a, bits), **_bus_assignment("b", b, bits)}
            outputs = network.simulate_outputs(assignment)
            assert _bus_value(outputs, names) == (a + b) % modulus, (bits, modulus, a, b)

    def test_rejects_bad_modulus(self):
        with pytest.raises(LogicNetworkError):
            modular_adder_network(2, 5)
        with pytest.raises(LogicNetworkError):
            modular_adder_network(2, 1)
        with pytest.raises(LogicNetworkError):
            modular_adder_network(0, 2)

    def test_to_dag_produces_valid_pebbling_dag(self):
        dag = modular_adder_network(2, 3).to_dag()
        dag.validate()
        assert dag.num_nodes > 0


class TestModularSubtractor:
    @pytest.mark.parametrize("bits,modulus", [(2, 3), (2, 4), (3, 5), (3, 7), (4, 11)])
    def test_exhaustive_modular_subtraction(self, bits, modulus):
        network = modular_subtractor_network(bits, modulus)
        names = network.outputs
        for a, b in itertools.product(range(modulus), repeat=2):
            assignment = {**_bus_assignment("a", a, bits), **_bus_assignment("b", b, bits)}
            outputs = network.simulate_outputs(assignment)
            assert _bus_value(outputs, names) == (a - b) % modulus, (bits, modulus, a, b)

    def test_without_majority_gates(self):
        network = modular_subtractor_network(3, 7, use_majority=False)
        outputs = network.simulate_outputs(
            {**_bus_assignment("a", 2, 3), **_bus_assignment("b", 5, 3)}
        )
        assert _bus_value(outputs, network.outputs) == (2 - 5) % 7

    def test_rejects_bad_modulus(self):
        with pytest.raises(LogicNetworkError):
            modular_subtractor_network(2, 8)
