"""Unit tests for the ISCAS-89 .bench parser and writer."""

import itertools

import pytest

from repro.errors import BenchParseError
from repro.logic.bench import network_from_bench, network_to_bench, parse_bench, write_bench
from repro.logic.iscas import C17_BENCH, c17_network


class TestParse:
    def test_c17_parses_with_expected_sizes(self):
        network = c17_network()
        assert network.num_inputs == 5
        assert network.num_outputs == 2
        assert network.num_gates == 6

    def test_c17_functionality_spot_checks(self):
        network = c17_network()
        # c17 outputs: 22 = NAND(10, 16), 23 = NAND(16, 19)
        def reference(values):
            g10 = not (values["1"] and values["3"])
            g11 = not (values["3"] and values["6"])
            g16 = not (values["2"] and g11)
            g19 = not (g11 and values["7"])
            return {"22": not (g10 and g16), "23": not (g16 and g19)}

        for bits in itertools.product([False, True], repeat=5):
            values = dict(zip(["1", "2", "3", "6", "7"], bits))
            assert network.simulate_outputs(values) == reference(values)

    def test_gates_listed_out_of_order(self):
        text = """
        INPUT(a)
        INPUT(b)
        OUTPUT(z)
        z = AND(y, b)
        y = NOT(a)
        """
        network = parse_bench(text)
        assert network.num_gates == 2
        assert network.simulate_outputs({"a": False, "b": True})["z"] is True

    def test_comments_and_blank_lines_ignored(self):
        text = "# header\n\nINPUT(a)\nOUTPUT(y)\n y = BUF(a)  # trailing\n"
        network = parse_bench(text)
        assert network.num_gates == 1

    def test_case_insensitive_keywords(self):
        text = "input(a)\noutput(y)\ny = nand(a, a)\n"
        network = parse_bench(text)
        assert network.simulate_outputs({"a": True})["y"] is False

    def test_output_driven_by_input(self):
        text = "INPUT(a)\nINPUT(b)\nOUTPUT(a)\nOUTPUT(g)\ng = AND(a, b)\n"
        network = parse_bench(text)
        assert network.outputs == ["a", "g"]

    def test_dff_rejected(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")

    def test_unknown_gate_rejected(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")

    def test_undriven_signal_rejected(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")

    def test_unknown_output_rejected(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nOUTPUT(z)\ny = NOT(a)\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nthis is not bench\n")

    def test_combinational_loop_rejected(self):
        text = "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = AND(a, x)\n"
        with pytest.raises(BenchParseError):
            parse_bench(text)


class TestWrite:
    def test_round_trip_preserves_function(self, half_adder_network):
        text = network_to_bench(half_adder_network)
        rebuilt = parse_bench(text, name="rebuilt")
        for a, b in itertools.product([False, True], repeat=2):
            assert rebuilt.simulate_outputs({"a": a, "b": b}) == \
                half_adder_network.simulate_outputs({"a": a, "b": b})

    def test_c17_round_trip(self):
        original = c17_network()
        rebuilt = parse_bench(network_to_bench(original))
        for bits in itertools.product([False, True], repeat=5):
            values = dict(zip(original.inputs, bits))
            assert rebuilt.simulate_outputs(values) == original.simulate_outputs(values)

    def test_file_round_trip(self, tmp_path, half_adder_network):
        path = tmp_path / "ha.bench"
        write_bench(half_adder_network, path)
        network = network_from_bench(path)
        assert network.name == "ha"
        assert network.num_gates == 2

    def test_bench_text_contains_declarations(self):
        text = network_to_bench(c17_network())
        assert "INPUT(1)" in text
        assert "OUTPUT(22)" in text
        assert "22 = NAND(10, 16)" in text

    def test_bundled_c17_text_is_parseable(self):
        assert parse_bench(C17_BENCH).num_gates == 6
