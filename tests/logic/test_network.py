"""Unit tests for the logic-network container."""

import itertools

import pytest

from repro.errors import LogicNetworkError
from repro.logic import GateType, LogicNetwork


class TestConstruction:
    def test_half_adder_structure(self, half_adder_network):
        network = half_adder_network
        assert network.num_inputs == 2
        assert network.num_outputs == 2
        assert network.num_gates == 2
        assert network.gate("sum").gate_type is GateType.XOR

    def test_duplicate_signal_rejected(self):
        network = LogicNetwork()
        network.add_input("a")
        with pytest.raises(LogicNetworkError):
            network.add_input("a")
        with pytest.raises(LogicNetworkError):
            network.add_gate("a", "NOT", ["a"])

    def test_empty_signal_name_rejected(self):
        with pytest.raises(LogicNetworkError):
            LogicNetwork().add_input("")

    def test_unknown_fanin_rejected(self):
        network = LogicNetwork()
        network.add_input("a")
        with pytest.raises(LogicNetworkError):
            network.add_gate("g", "AND", ["a", "missing"])

    def test_unknown_output_rejected(self):
        with pytest.raises(LogicNetworkError):
            LogicNetwork().add_output("nope")

    def test_gate_arity_validation(self):
        network = LogicNetwork()
        network.add_inputs(["a", "b"])
        with pytest.raises(LogicNetworkError):
            network.add_gate("g", "NOT", ["a", "b"])
        with pytest.raises(LogicNetworkError):
            network.add_gate("g", "MAJ", ["a", "b"])

    def test_unknown_gate_type_rejected(self):
        network = LogicNetwork()
        network.add_input("a")
        with pytest.raises(LogicNetworkError):
            network.add_gate("g", "FOO", ["a"])

    def test_gate_type_from_name_case_insensitive(self):
        assert GateType.from_name("xor") is GateType.XOR
        assert GateType.from_name(GateType.AND) is GateType.AND

    def test_validate_requires_inputs_and_outputs(self):
        network = LogicNetwork()
        with pytest.raises(LogicNetworkError):
            network.validate()
        network.add_input("a")
        with pytest.raises(LogicNetworkError):
            network.validate()
        network.add_output("a")
        network.validate()


class TestSimulation:
    def test_half_adder_truth_table(self, half_adder_network):
        for a, b in itertools.product([False, True], repeat=2):
            outputs = half_adder_network.simulate_outputs({"a": a, "b": b})
            assert outputs["sum"] == (a ^ b)
            assert outputs["carry"] == (a and b)

    def test_simulation_missing_input_raises(self, half_adder_network):
        with pytest.raises(LogicNetworkError):
            half_adder_network.simulate({"a": True})

    def test_all_gate_types(self):
        network = LogicNetwork("gates")
        network.add_inputs(["a", "b", "c"])
        network.add_gate("and_", "AND", ["a", "b"])
        network.add_gate("or_", "OR", ["a", "b"])
        network.add_gate("nand_", "NAND", ["a", "b"])
        network.add_gate("nor_", "NOR", ["a", "b"])
        network.add_gate("xor_", "XOR", ["a", "b"])
        network.add_gate("xnor_", "XNOR", ["a", "b"])
        network.add_gate("not_", "NOT", ["a"])
        network.add_gate("buf_", "BUF", ["a"])
        network.add_gate("maj_", "MAJ", ["a", "b", "c"])
        network.add_gate("zero", "CONST0", [])
        network.add_gate("one", "CONST1", [])
        for name in ["and_", "or_", "nand_", "nor_", "xor_", "xnor_", "not_", "buf_", "maj_",
                     "zero", "one"]:
            network.add_output(name)
        for a, b, c in itertools.product([False, True], repeat=3):
            outputs = network.simulate_outputs({"a": a, "b": b, "c": c})
            assert outputs["and_"] == (a and b)
            assert outputs["or_"] == (a or b)
            assert outputs["nand_"] == (not (a and b))
            assert outputs["nor_"] == (not (a or b))
            assert outputs["xor_"] == (a ^ b)
            assert outputs["xnor_"] == (not (a ^ b))
            assert outputs["not_"] == (not a)
            assert outputs["buf_"] == a
            assert outputs["maj_"] == (int(a) + int(b) + int(c) >= 2)
            assert outputs["zero"] is False
            assert outputs["one"] is True

    def test_truth_tables_match_simulation(self, half_adder_network):
        tables = half_adder_network.truth_tables()
        for index, (a, b) in enumerate(itertools.product([False, True], repeat=2)):
            # Pattern index bit 0 is input 'a', bit 1 is input 'b'.
            pattern = (int(a)) | (int(b) << 1)
            outputs = half_adder_network.simulate_outputs({"a": a, "b": b})
            assert bool((tables["sum"] >> pattern) & 1) == outputs["sum"]
            assert bool((tables["carry"] >> pattern) & 1) == outputs["carry"]

    def test_truth_tables_input_limit(self):
        network = LogicNetwork()
        for index in range(17):
            network.add_input(f"i{index}")
        network.add_gate("g", "AND", ["i0", "i1"])
        network.add_output("g")
        with pytest.raises(LogicNetworkError):
            network.truth_tables()


class TestTopologyAndStatistics:
    def test_topological_order_handles_out_of_order_insertion(self):
        network = LogicNetwork()
        network.add_input("a")
        network.add_gate("g1", "NOT", ["a"])
        network.add_gate("g2", "AND", ["a", "g1"])
        network.add_output("g2")
        order = network.topological_order()
        assert order.index("g1") < order.index("g2")

    def test_statistics(self, half_adder_network):
        stats = half_adder_network.statistics()
        assert stats == {"inputs": 2, "outputs": 2, "gates": 2, "depth": 1}

    def test_repr(self, half_adder_network):
        assert "half_adder" in repr(half_adder_network)


class TestToDag:
    def test_half_adder_dag(self, half_adder_network):
        dag = half_adder_network.to_dag()
        assert set(dag.nodes()) == {"sum", "carry"}
        assert set(dag.outputs()) == {"sum", "carry"}
        assert dag.dependencies("sum") == ()

    def test_inverters_collapse_out_of_the_dag(self):
        network = LogicNetwork("inv")
        network.add_inputs(["a", "b"])
        network.add_gate("na", "NOT", ["a"])
        network.add_gate("g", "AND", ["na", "b"])
        network.add_gate("ng", "NOT", ["g"])
        network.add_output("ng")
        dag = network.to_dag(collapse_inverters=True)
        assert set(dag.nodes()) == {"g"}
        assert dag.outputs() == ["g"]

    def test_inverters_kept_when_requested(self):
        network = LogicNetwork("inv")
        network.add_inputs(["a", "b"])
        network.add_gate("na", "NOT", ["a"])
        network.add_gate("g", "AND", ["na", "b"])
        network.add_output("g")
        dag = network.to_dag(collapse_inverters=False)
        assert set(dag.nodes()) == {"na", "g"}

    def test_constant_fanins_are_dropped(self):
        network = LogicNetwork("const")
        network.add_input("a")
        network.add_gate("one", "CONST1", [])
        network.add_gate("g", "AND", ["a", "one"])
        network.add_output("g")
        dag = network.to_dag()
        assert dag.dependencies("g") == ()

    def test_network_reducing_to_inputs_raises(self):
        network = LogicNetwork("wire")
        network.add_input("a")
        network.add_gate("b", "BUF", ["a"])
        network.add_output("b")
        with pytest.raises(LogicNetworkError):
            network.to_dag()

    def test_dag_operations_carry_gate_types(self, half_adder_network):
        dag = half_adder_network.to_dag()
        assert dag.node("sum").operation == "XOR"
        assert dag.node("carry").operation == "AND"
