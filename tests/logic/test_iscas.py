"""Tests for the ISCAS benchmark circuits (real c17 + synthetic stand-ins)."""

import pytest

from repro.errors import WorkloadError
from repro.logic.iscas import (
    ISCAS_PROFILES,
    c17_network,
    iscas_like_network,
    list_iscas_names,
)


class TestC17:
    def test_real_netlist_statistics(self):
        network = c17_network()
        stats = network.statistics()
        assert stats["inputs"] == 5
        assert stats["outputs"] == 2
        assert stats["gates"] == 6

    def test_c17_dag_matches_paper_profile_shape(self):
        # The paper's c17 row lists 5 PIs and 2 POs; the XMG node count (12)
        # differs from the NAND-gate count (6) because mockturtle re-expresses
        # the circuit, but PI/PO must match exactly.
        dag = c17_network().to_dag()
        dag.validate()
        assert len(dag.outputs()) == 2

    def test_scale_is_ignored_for_c17(self):
        assert iscas_like_network("c17", scale=0.1).num_gates == 6


class TestSyntheticStandIns:
    def test_all_profiles_listed(self):
        names = list_iscas_names()
        assert "c432" in names and "c7552" in names
        assert len(names) == len(ISCAS_PROFILES)

    @pytest.mark.parametrize("name", ["c432", "c499", "c880"])
    def test_full_scale_matches_profile_sizes(self, name):
        profile = ISCAS_PROFILES[name]
        network = iscas_like_network(name, scale=1.0)
        assert network.num_gates == profile.nodes
        assert network.num_inputs == profile.inputs
        assert network.num_outputs == profile.outputs
        network.validate()

    def test_scaling_reduces_gate_count(self):
        full = iscas_like_network("c432", scale=1.0)
        small = iscas_like_network("c432", scale=0.2)
        assert small.num_gates < full.num_gates
        assert small.num_gates >= ISCAS_PROFILES["c432"].outputs

    def test_deterministic_generation(self):
        first = iscas_like_network("c499", scale=0.3)
        second = iscas_like_network("c499", scale=0.3)
        assert [g.output for g in first.gates()] == [g.output for g in second.gates()]
        assert [g.fanins for g in first.gates()] == [g.fanins for g in second.gates()]

    def test_custom_seed_changes_structure(self):
        first = iscas_like_network("c499", scale=0.3, seed=1)
        second = iscas_like_network("c499", scale=0.3, seed=2)
        assert [g.fanins for g in first.gates()] != [g.fanins for g in second.gates()]

    def test_stand_in_converts_to_valid_dag(self):
        dag = iscas_like_network("c880", scale=0.15).to_dag()
        dag.validate()
        assert dag.num_nodes > 10

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            iscas_like_network("c9999")

    def test_non_positive_scale_rejected(self):
        with pytest.raises(WorkloadError):
            iscas_like_network("c432", scale=0)
