"""Unit tests for the straight-line-program IR."""

import pytest

from repro.errors import SlpError
from repro.slp import Instruction, Operation, StraightLineProgram


def _simple_program() -> StraightLineProgram:
    program = StraightLineProgram(name="simple")
    program.add_inputs(["a", "b"])
    program.add("t1", "a", "b")
    program.mul("t2", "t1", "a")
    program.sqr("t3", "t2")
    program.set_outputs(["t3"])
    return program


class TestConstruction:
    def test_builder_methods(self):
        program = StraightLineProgram()
        program.add_inputs(["x", "y"])
        program.add("s", "x", "y")
        program.sub("d", "x", "y")
        program.mul("p", "s", "d")
        program.sqr("q", "p")
        program.neg("n", "q")
        program.cmul("c", "n", 5)
        program.set_outputs(["c"])
        assert program.num_instructions == 6
        assert program.operation_counts() == {
            "add": 1, "sub": 1, "mul": 1, "sqr": 1, "neg": 1, "cmul": 1,
        }

    def test_operation_from_name(self):
        assert Operation.from_name("ADD") is Operation.ADD
        assert Operation.from_name(Operation.MUL) is Operation.MUL
        with pytest.raises(SlpError):
            Operation.from_name("div")

    def test_duplicate_definitions_rejected(self):
        program = StraightLineProgram()
        program.add_input("a")
        with pytest.raises(SlpError):
            program.add_input("a")
        program.add("t", "a", "a")
        with pytest.raises(SlpError):
            program.add("t", "a", "a")

    def test_use_before_definition_rejected(self):
        program = StraightLineProgram()
        program.add_input("a")
        with pytest.raises(SlpError):
            program.add("t", "a", "ghost")

    def test_instruction_arity_checked(self):
        with pytest.raises(SlpError):
            Instruction("t", Operation.ADD, ("a",))
        with pytest.raises(SlpError):
            Instruction("t", Operation.SQR, ("a", "b"))

    def test_cmul_requires_constant(self):
        with pytest.raises(SlpError):
            Instruction("t", Operation.CONST_MUL, ("a",))

    def test_outputs_must_exist(self):
        program = StraightLineProgram()
        program.add_input("a")
        with pytest.raises(SlpError):
            program.set_outputs(["ghost"])
        with pytest.raises(SlpError):
            program.set_outputs([])

    def test_validate_catches_missing_pieces(self):
        program = StraightLineProgram()
        with pytest.raises(SlpError):
            program.validate()
        program.add_input("a")
        with pytest.raises(SlpError):
            program.validate()  # no outputs

    def test_repr(self):
        assert "simple" in repr(_simple_program())


class TestEvaluation:
    def test_plain_integer_evaluation(self):
        program = _simple_program()
        values = program.evaluate({"a": 3, "b": 4})
        assert values["t1"] == 7
        assert values["t2"] == 21
        assert values["t3"] == 441

    def test_modular_evaluation(self):
        program = _simple_program()
        outputs = program.evaluate_outputs({"a": 3, "b": 4}, modulus=5)
        assert outputs == {"t3": (((3 + 4) % 5 * 3) % 5) ** 2 % 5}

    def test_all_operations_semantics(self):
        program = StraightLineProgram()
        program.add_inputs(["x", "y"])
        program.add("s", "x", "y")
        program.sub("d", "x", "y")
        program.mul("p", "x", "y")
        program.sqr("q", "x")
        program.neg("n", "y")
        program.cmul("c", "x", 7)
        program.set_outputs(["s", "d", "p", "q", "n", "c"])
        values = program.evaluate_outputs({"x": 5, "y": 3})
        assert values == {"s": 8, "d": 2, "p": 15, "q": 25, "n": -3, "c": 35}

    def test_missing_input_raises(self):
        with pytest.raises(SlpError):
            _simple_program().evaluate({"a": 1})


class TestToDag:
    def test_nodes_are_instructions_only(self):
        dag = _simple_program().to_dag()
        assert set(dag.nodes()) == {"t1", "t2", "t3"}
        assert dag.outputs() == ["t3"]
        assert dag.dependencies("t1") == ()
        assert dag.dependencies("t2") == ("t1",)

    def test_operations_propagate_to_dag(self):
        dag = _simple_program().to_dag()
        assert dag.node("t2").operation == "mul"
        assert dag.node("t3").operation == "sqr"

    def test_output_equal_to_input_rejected(self):
        program = StraightLineProgram()
        program.add_input("a")
        program.set_outputs(["a"])
        with pytest.raises(SlpError):
            program.to_dag()

    def test_dag_is_valid(self):
        dag = _simple_program().to_dag()
        dag.validate()
