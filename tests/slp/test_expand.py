"""Tests for the word-level SLP to gate-level network expansion."""

import itertools
import random

import pytest

from repro.errors import SlpError
from repro.slp import StraightLineProgram, expand_slp_to_network, hadamard_operator_slp


def _bus_assignment(program_inputs, values, bits):
    assignment = {}
    for name in program_inputs:
        for i in range(bits):
            assignment[f"{name}_{i}"] = bool((values[name] >> i) & 1)
    return assignment


def _decode_outputs(network, program, outputs, bits):
    """Group the flat output signals back into per-output-bus integers."""
    decoded = {}
    position = 0
    names = network.outputs
    for output in program.outputs:
        value = 0
        for i in range(bits):
            if outputs[names[position]]:
                value |= 1 << i
            position += 1
        decoded[output] = value
    return decoded


class TestHadamardExpansion:
    @pytest.mark.parametrize("bits,modulus", [(2, 3), (2, 4), (3, 5)])
    def test_gate_level_matches_word_level(self, bits, modulus):
        program = hadamard_operator_slp()
        network = expand_slp_to_network(program, bits=bits, modulus=modulus)
        network.validate()
        rng = random.Random(bits * 31 + modulus)
        for _ in range(15):
            values = {name: rng.randrange(modulus) for name in program.inputs}
            expected = program.evaluate_outputs(values, modulus=modulus)
            assignment = _bus_assignment(program.inputs, values, bits)
            outputs = network.simulate_outputs(assignment)
            decoded = _decode_outputs(network, program, outputs, bits)
            assert decoded == expected, (bits, modulus, values)

    def test_network_size_scales_with_bits(self):
        small = expand_slp_to_network(hadamard_operator_slp(), bits=2, modulus=3)
        large = expand_slp_to_network(hadamard_operator_slp(), bits=4, modulus=5)
        assert large.num_gates > small.num_gates

    def test_dag_conversion(self):
        network = expand_slp_to_network(hadamard_operator_slp(), bits=2, modulus=3)
        dag = network.to_dag()
        dag.validate()
        assert dag.num_nodes > 50  # the b2_m3 design is in the ~100-node class


class TestGeneralOperations:
    @pytest.mark.parametrize("bits,modulus", [(2, 3), (3, 7)])
    def test_mul_sqr_cmul_neg(self, bits, modulus):
        program = StraightLineProgram("mixed")
        program.add_inputs(["u", "v"])
        program.mul("m", "u", "v")
        program.sqr("s", "u")
        program.cmul("c", "v", 3)
        program.neg("n", "u")
        program.add("r", "m", "s")
        program.sub("w", "c", "n")
        program.set_outputs(["r", "w"])
        network = expand_slp_to_network(program, bits=bits, modulus=modulus)
        for u, v in itertools.product(range(modulus), repeat=2):
            expected = program.evaluate_outputs({"u": u, "v": v}, modulus=modulus)
            assignment = _bus_assignment(program.inputs, {"u": u, "v": v}, bits)
            outputs = network.simulate_outputs(assignment)
            decoded = _decode_outputs(network, program, outputs, bits)
            assert decoded == expected, (bits, modulus, u, v)

    def test_invalid_modulus_rejected(self):
        with pytest.raises(SlpError):
            expand_slp_to_network(hadamard_operator_slp(), bits=2, modulus=5)
        with pytest.raises(SlpError):
            expand_slp_to_network(hadamard_operator_slp(), bits=2, modulus=1)

    def test_network_name_defaults_to_design_convention(self):
        network = expand_slp_to_network(hadamard_operator_slp(), bits=2, modulus=3)
        assert network.name.endswith("b2_m3")
