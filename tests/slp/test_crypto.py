"""Functional tests for the bundled cryptographic straight-line programs."""

import random

import pytest

from repro.slp import (
    edwards_point_addition_slp,
    hadamard_operator_slp,
    kummer_doubling_slp,
    kummer_point_addition_slp,
)


class TestHadamardOperator:
    def test_matches_paper_equations(self):
        """Section IV-B: x=t1+t2, y=t1-t2, z=t3+t4, t=t3-t4 with
        t1=a+b, t2=c+d, t3=a-b, t4=c-d."""
        program = hadamard_operator_slp()
        rng = random.Random(0)
        for _ in range(50):
            a, b, c, d = (rng.randrange(-100, 100) for _ in range(4))
            outputs = program.evaluate_outputs({"a": a, "b": b, "c": c, "d": d})
            assert outputs["x"] == (a + b) + (c + d)
            assert outputs["y"] == (a + b) - (c + d)
            assert outputs["z"] == (a - b) + (c - d)
            assert outputs["t"] == (a - b) - (c - d)

    def test_operation_counts(self):
        program = hadamard_operator_slp()
        assert program.operation_counts() == {"add": 4, "sub": 4}
        assert program.num_instructions == 8

    def test_dag_shape(self):
        dag = hadamard_operator_slp().to_dag()
        dag.validate()
        assert dag.num_nodes == 8
        assert len(dag.outputs()) == 4
        assert dag.depth() == 2

    def test_modular_evaluation(self):
        program = hadamard_operator_slp()
        outputs = program.evaluate_outputs({"a": 2, "b": 1, "c": 2, "d": 0}, modulus=3)
        assert outputs == {"x": (3 + 2) % 3, "y": (3 - 2) % 3, "z": (1 + 2) % 3, "t": (1 - 2) % 3}

    def test_involution_up_to_scaling(self):
        """Applying the Hadamard butterfly twice multiplies every value by 4."""
        program = hadamard_operator_slp()
        rng = random.Random(1)
        values = {name: rng.randrange(-50, 50) for name in "abcd"}
        first = program.evaluate_outputs(values)
        second = program.evaluate_outputs(
            {"a": first["x"], "b": first["y"], "c": first["z"], "d": first["t"]}
        )
        assert second["x"] == 4 * values["a"]
        assert second["y"] == 4 * values["b"]
        assert second["z"] == 4 * values["c"]
        assert second["t"] == 4 * values["d"]


class TestEdwardsAddition:
    #: A prime congruent to 3 mod 4 so square roots are easy if ever needed.
    PRIME = 10007

    def _affine_reference(self, x1, y1, x2, y2, a, d, p):
        numerator_x = (x1 * y2 + y1 * x2) % p
        denominator_x = (1 + d * x1 * x2 * y1 * y2) % p
        numerator_y = (y1 * y2 - a * x1 * x2) % p
        denominator_y = (1 - d * x1 * x2 * y1 * y2) % p
        inverse_x = pow(denominator_x, p - 2, p)
        inverse_y = pow(denominator_y, p - 2, p)
        return (numerator_x * inverse_x) % p, (numerator_y * inverse_y) % p

    def test_matches_affine_formulas(self):
        a, d, p = -1, 121665, self.PRIME
        program = edwards_point_addition_slp(coefficient_a=a, coefficient_d=d)
        rng = random.Random(2)
        checked = 0
        while checked < 25:
            x1, y1, x2, y2 = (rng.randrange(1, p) for _ in range(4))
            denom_x = (1 + d * x1 * x2 * y1 * y2) % p
            denom_y = (1 - d * x1 * x2 * y1 * y2) % p
            if denom_x == 0 or denom_y == 0:
                continue
            outputs = program.evaluate_outputs(
                {"x1": x1, "y1": y1, "z1": 1, "x2": x2, "y2": y2, "z2": 1}, modulus=p
            )
            if outputs["Z3"] == 0:
                continue
            inverse_z = pow(outputs["Z3"], p - 2, p)
            got = ((outputs["X3"] * inverse_z) % p, (outputs["Y3"] * inverse_z) % p)
            assert got == self._affine_reference(x1, y1, x2, y2, a, d, p)
            checked += 1

    def test_operation_mix(self):
        counts = edwards_point_addition_slp().operation_counts()
        assert counts["mul"] >= 8
        assert counts["sqr"] == 1
        assert counts["cmul"] == 2

    def test_dag_is_valid(self):
        dag = edwards_point_addition_slp().to_dag()
        dag.validate()
        assert set(dag.outputs()) == {"X3", "Y3", "Z3"}


class TestKummerPrograms:
    def test_addition_structure(self):
        program = kummer_point_addition_slp()
        counts = program.operation_counts()
        assert counts["add"] == 12 and counts["sub"] == 12       # three Hadamard blocks
        assert counts["mul"] == 8 and counts["sqr"] == 4 and counts["cmul"] == 4
        assert program.num_instructions == 40
        assert len(program.outputs) == 4

    def test_addition_matches_block_composition(self):
        """The program must equal H -> mul -> cmul -> H -> sqr -> mul composed by hand."""
        constants = (3, 5, 7, 11)
        program = kummer_point_addition_slp(curve_constants=constants)
        rng = random.Random(3)

        def hadamard(a, b, c, d):
            t1, t2, t3, t4 = a + b, c + d, a - b, c - d
            return t1 + t2, t1 - t2, t3 + t4, t3 - t4

        for _ in range(20):
            p = [rng.randrange(-9, 9) for _ in range(4)]
            q = [rng.randrange(-9, 9) for _ in range(4)]
            inv_d = [rng.randrange(-9, 9) for _ in range(4)]
            hp, hq = hadamard(*p), hadamard(*q)
            products = [x * y for x, y in zip(hp, hq)]
            scaled = [k * m for k, m in zip(constants, products)]
            hh = hadamard(*scaled)
            squares = [value * value for value in hh]
            expected = [s * i for s, i in zip(squares, inv_d)]
            assignment = {
                "xp": p[0], "yp": p[1], "zp": p[2], "tp": p[3],
                "xq": q[0], "yq": q[1], "zq": q[2], "tq": q[3],
                "ixd": inv_d[0], "iyd": inv_d[1], "izd": inv_d[2], "itd": inv_d[3],
            }
            outputs = program.evaluate_outputs(assignment)
            assert [outputs["xr"], outputs["yr"], outputs["zr"], outputs["tr"]] == expected

    def test_doubling_structure_and_composition(self):
        constants = (2, 3, 5, 7)
        base = (11, 13, 17, 19)
        program = kummer_doubling_slp(curve_constants=constants, inverse_base_constants=base)
        counts = program.operation_counts()
        assert counts["add"] == 8 and counts["sub"] == 8          # two Hadamard blocks
        assert counts["sqr"] == 8 and counts["cmul"] == 8

        def hadamard(a, b, c, d):
            t1, t2, t3, t4 = a + b, c + d, a - b, c - d
            return t1 + t2, t1 - t2, t3 + t4, t3 - t4

        values = (4, -2, 3, 1)
        h1 = hadamard(*values)
        s = [v * v for v in h1]
        e = [k * v for k, v in zip(constants, s)]
        h2 = hadamard(*e)
        r = [v * v for v in h2]
        expected = [k * v for k, v in zip(base, r)]
        outputs = program.evaluate_outputs(dict(zip("xyzt", values)))
        assert [outputs["x2"], outputs["y2"], outputs["z2"], outputs["t2"]] == expected

    def test_dag_sizes_match_fig5_size_class(self):
        """Fig. 5 workload: ~40 word-level operations with mixed types."""
        dag = kummer_point_addition_slp().to_dag()
        dag.validate()
        assert 35 <= dag.num_nodes <= 45
        assert len(dag.outputs()) == 4

    @pytest.mark.parametrize(
        "factory",
        [kummer_point_addition_slp, kummer_doubling_slp, edwards_point_addition_slp,
         hadamard_operator_slp],
    )
    def test_programs_validate(self, factory):
        factory().validate()
