"""Setuptools shim.

The environment used for the reproduction has no network access and no
``wheel`` package, so PEP 517 editable installs (which build a wheel) fail.
This shim enables the legacy ``pip install -e . --no-build-isolation
--no-use-pep517`` / ``python setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
