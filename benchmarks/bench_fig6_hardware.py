"""Experiment E4 — Fig. 6: mapping a 9-input AND oracle onto 16 qubits.

Three circuits are produced for the oracle of Fig. 6(a) and compared on
qubit count and gate count:

* Bennett strategy (Fig. 6(b)): 17 qubits, 15 gates — does not fit;
* Barenco decomposition of the 9-control Toffoli with one ancilla
  (Fig. 6(d)): 11 qubits, 48 gates;
* SAT pebbling with 7 pebbles (Fig. 6(c)): 16 qubits, 23 gates in the
  paper.

Every circuit is additionally verified against the Boolean specification
(all 512 input patterns) including clean ancillae.
"""

from __future__ import annotations

from conftest import run_once

from repro.circuits import barenco_and_oracle, compile_network_oracle
from repro.circuits.simulator import verify_oracle_circuit
from repro.pebbling import pebble_dag
from repro.workloads.registry import and_tree_network

DEVICE_QUBITS = 16  # e.g. ibmqx5


def test_fig6_hardware_constrained_mapping(benchmark, record):
    network = and_tree_network(9)
    dag = network.to_dag()
    output = network.outputs[0]

    def experiment():
        bennett = compile_network_oracle(network)
        barenco = barenco_and_oracle(9)
        pebbled_result = pebble_dag(dag, DEVICE_QUBITS - network.num_inputs, time_limit=120)
        pebbled = compile_network_oracle(network, pebbled_result.strategy)
        return bennett, barenco, pebbled

    bennett, barenco, pebbled = run_once(benchmark, experiment)

    # Functional verification (Fig. 1's requirement: no garbage left behind).
    verify_oracle_circuit(
        bennett.circuit, network,
        input_map={name: bennett.input_qubits[name] for name in network.inputs},
        output_map={output: bennett.output_qubits[output]},
    )
    verify_oracle_circuit(
        pebbled.circuit, network,
        input_map={name: pebbled.input_qubits[name] for name in network.inputs},
        output_map={output: pebbled.output_qubits[output]},
    )
    verify_oracle_circuit(
        barenco,
        lambda values: {"h": all(values[f"x{i}"] for i in range(9))},
        input_map={f"x{i}": f"x{i}" for i in range(9)},
        output_map={"h": "h"},
    )

    lines = [
        "mapping                      qubits  gates   fits 16 qubits   paper (qubits/gates)",
        f"Bennett (Fig. 6b)            {bennett.num_qubits:6d}  {bennett.num_gates:5d}   "
        f"{str(bennett.num_qubits <= DEVICE_QUBITS):15s}  17 / 15",
        f"Barenco (Fig. 6d)            {barenco.num_qubits:6d}  {barenco.num_gates:5d}   "
        f"{str(barenco.num_qubits <= DEVICE_QUBITS):15s}  11 / 48",
        f"SAT pebbling (Fig. 6c)       {pebbled.num_qubits:6d}  {pebbled.num_gates:5d}   "
        f"{str(pebbled.num_qubits <= DEVICE_QUBITS):15s}  16 / 23",
    ]
    record("fig6_hardware_mapping", lines)

    assert bennett.num_qubits == 17 and bennett.num_gates == 15
    assert barenco.num_qubits == 11 and barenco.num_gates == 48
    assert pebbled.num_qubits <= DEVICE_QUBITS
    assert pebbled.num_gates <= 23
    assert barenco.num_gates > pebbled.num_gates > bennett.num_gates
