"""Experiment E3 — Table I: Bennett strategy versus SAT-based pebbling.

For every benchmark design the paper reports the Bennett baseline
(pebbles P, steps K) and the best SAT solution found within a two-minute
timeout (pebbles P, steps K, runtime), then summarises the average pebble
reduction (52.77 %) and the average step increase (2.68x).

The pure-Python substrate cannot process the paper-sized instances (up to
1257 nodes) within a laptop benchmark run, so this harness executes the
identical experiment design on scaled-down instances of the same families:

* gate-level Hadamard ``H`` operator designs (``b*_m*`` rows) with reduced
  bit widths;
* the real ``c17`` plus synthetic ISCAS-sized stand-ins at reduced scale.

The reported columns are the same as Table I, and EXPERIMENTS.md compares
the resulting averages with the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

from conftest import run_once

from repro.pebbling import ReversiblePebblingSolver, eager_bennett_strategy
from repro.workloads import load_workload, table1_rows

#: (workload name, scale) pairs exercised by the harness, chosen so the
#: whole table completes in a few minutes with the pure-Python SAT solver.
SCALED_ROWS: list[tuple[str, float]] = [
    ("b2_m3", 0.5),
    ("c17", 1.0),
    ("c432", 0.10),
    ("c499", 0.10),
    ("c880", 0.08),
    ("c1355", 0.10),
]
TIMEOUT_PER_BUDGET = 25.0


@dataclass
class Row:
    name: str
    nodes: int
    bennett_pebbles: int
    bennett_steps: int
    pebbles: int | None
    steps: int | None
    runtime: float


def _run_row(name: str, scale: float) -> Row:
    dag = load_workload(name, scale=scale)
    baseline = eager_bennett_strategy(dag)
    solver = ReversiblePebblingSolver(dag)
    best, attempts = solver.minimize_pebbles(
        timeout_per_budget=TIMEOUT_PER_BUDGET,
        step_schedule="geometric",
        stop_after_failures=1,
    )
    runtime = sum(result.runtime for result in attempts)
    if best is None or best.strategy is None:
        return Row(name, dag.num_nodes, baseline.max_pebbles, baseline.num_moves,
                   None, None, runtime)
    cleaned = best.strategy.remove_redundant_moves()
    return Row(
        name,
        dag.num_nodes,
        baseline.max_pebbles,
        baseline.num_moves,
        cleaned.max_pebbles,
        cleaned.num_moves,
        runtime,
    )


def test_table1_comparison(benchmark, record):
    def experiment():
        return [_run_row(name, scale) for name, scale in SCALED_ROWS]

    rows = run_once(benchmark, experiment)

    paper_by_name = {row.name: row for row in table1_rows()}
    lines = [
        "design     nodes  Bennett P  Bennett K  pebbling P  pebbling K  runtime[s]  %P red.  xK",
        "(scaled-down instances; paper-sized numbers in EXPERIMENTS.md)",
    ]
    reductions = []
    ratios = []
    for row in rows:
        if row.pebbles is None:
            lines.append(f"{row.name:9s}  {row.nodes:5d}  {row.bennett_pebbles:9d}  "
                         f"{row.bennett_steps:9d}  (no solution within timeout)")
            continue
        reduction = 100.0 * (row.bennett_pebbles - row.pebbles) / row.bennett_pebbles
        ratio = row.steps / row.bennett_steps
        reductions.append(reduction)
        ratios.append(ratio)
        lines.append(
            f"{row.name:9s}  {row.nodes:5d}  {row.bennett_pebbles:9d}  {row.bennett_steps:9d}  "
            f"{row.pebbles:10d}  {row.steps:10d}  {row.runtime:10.2f}  {reduction:6.2f}  {ratio:.2f}"
        )
        paper = paper_by_name.get(row.name)
        if paper is not None and paper.paper_bennett_pebbles:
            paper_reduction = 100.0 * (paper.paper_bennett_pebbles - paper.paper_pebbles) / \
                paper.paper_bennett_pebbles
            lines.append(
                f"{'':9s}  paper: nodes={paper.paper_nodes} Bennett P/K="
                f"{paper.paper_bennett_pebbles}/{paper.paper_bennett_steps} "
                f"pebbling P/K={paper.paper_pebbles}/{paper.paper_steps} "
                f"({paper_reduction:.2f}% reduction)"
            )
    assert reductions, "no row produced a pebbling solution"
    average_reduction = sum(reductions) / len(reductions)
    average_ratio = sum(ratios) / len(ratios)
    lines.append("")
    lines.append(f"average pebble reduction: {average_reduction:.2f}%   (paper: 52.77%)")
    lines.append(f"average step factor     : {average_ratio:.2f}x    (paper: 2.68x)")
    record("table1_comparison", lines)

    # Qualitative claims of the paper that must hold on the scaled instances:
    # pebbling reduces the pebble count on average and pays with more steps.
    assert average_reduction > 0
    assert average_ratio >= 1.0
