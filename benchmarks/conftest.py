"""Shared helpers for the benchmark harnesses.

Every harness regenerates one table or figure of the paper.  Besides the
timing collected by pytest-benchmark, each harness emits the actual
rows/series it reproduces through :func:`record_table`, which both prints
them (visible with ``pytest -s`` or in the captured output on failure) and
writes them to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can be
updated from a plain file.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIRECTORY = Path(__file__).parent / "results"


def record_table(name: str, lines: list[str]) -> None:
    """Print and persist a reproduction table."""
    RESULTS_DIRECTORY.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print(f"\n=== {name} ===\n{text}\n")
    (RESULTS_DIRECTORY / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


@pytest.fixture
def record():
    """Fixture handing the recording helper to benchmark functions."""
    return record_table


def run_once(benchmark, function):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The SAT-based experiments are far too slow to repeat for statistical
    timing, and the paper reports single-run times as well.
    """
    return benchmark.pedantic(function, rounds=1, iterations=1, warmup_rounds=0)
