"""Experiment E5 (ablation, not in the paper) — encoding design choices.

DESIGN.md calls out three design decisions of the SAT formulation whose
impact is worth quantifying:

* the cardinality encoding used for the at-most-P constraint (pairwise,
  sequential counter, totalizer);
* incremental solving (final-state constraints selected with assumptions)
  versus re-encoding from scratch for every step bound;
* the step schedule (the paper's linear +1 loop versus a geometric ramp).

Each variant solves the same instances; the harness reports CNF sizes and
wall-clock times.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.pebbling import EncodingOptions, PebblingEncoder, ReversiblePebblingSolver
from repro.sat.cards import CardinalityEncoding
from repro.workloads import load_workload

#: Small instances for the cardinality ablation (the pairwise encoding is
#: binomial and only reasonable on small node counts / loose bounds).
CARDINALITY_INSTANCES = [
    ("fig2", 4),
    ("and9", 7),
]

#: Larger instances for the incremental/schedule ablation.
SEARCH_INSTANCES = [
    ("and9", 7),
    ("edwards-add", 14),
]


def _solve_time(dag, budget, *, encoding, incremental, schedule):
    options = EncodingOptions(cardinality=encoding)
    solver = ReversiblePebblingSolver(dag, options=options, incremental=incremental)
    started = time.monotonic()
    result = solver.solve(budget, time_limit=90, step_schedule=schedule)
    elapsed = time.monotonic() - started
    return result, elapsed


def test_ablation_cardinality_encodings(benchmark, record):
    def experiment():
        measurements = []
        for name, budget in CARDINALITY_INSTANCES:
            dag = load_workload(name)
            for encoding in CardinalityEncoding:
                cnf = PebblingEncoder(dag, options=EncodingOptions(cardinality=encoding)).encode(
                    max_pebbles=budget, num_steps=dag.depth() + 4
                ).cnf
                result, elapsed = _solve_time(
                    dag, budget, encoding=encoding, incremental=True, schedule="linear"
                )
                measurements.append((name, encoding.value, cnf.stats(), result, elapsed))
        return measurements

    measurements = run_once(benchmark, experiment)
    lines = ["instance      encoding    vars   clauses  solved  steps  time[s]"]
    for name, encoding, stats, result, elapsed in measurements:
        lines.append(
            f"{name:12s}  {encoding:10s}  {stats['variables']:5d}  {stats['clauses']:7d}  "
            f"{str(result.found):6s}  {str(result.num_steps):5s}  {elapsed:7.2f}"
        )
        assert result.found
    record("ablation_cardinality", lines)


def test_ablation_incremental_and_schedule(benchmark, record):
    def experiment():
        measurements = []
        for name, budget in SEARCH_INSTANCES:
            dag = load_workload(name)
            for incremental in (True, False):
                for schedule in ("linear", "geometric"):
                    result, elapsed = _solve_time(
                        dag, budget,
                        encoding=CardinalityEncoding.SEQUENTIAL,
                        incremental=incremental,
                        schedule=schedule,
                    )
                    measurements.append((name, incremental, schedule, result, elapsed))
        return measurements

    measurements = run_once(benchmark, experiment)
    lines = ["instance      incremental  schedule   solved  steps  moves  sat-calls  time[s]"]
    for name, incremental, schedule, result, elapsed in measurements:
        lines.append(
            f"{name:12s}  {str(incremental):11s}  {schedule:9s}  {str(result.found):6s}  "
            f"{str(result.num_steps):5s}  {str(result.num_moves):5s}  "
            f"{len(result.attempts):9d}  {elapsed:7.2f}"
        )
        assert result.found
    record("ablation_incremental_schedule", lines)
