"""Experiment E1 — Fig. 2 / Fig. 3 / Fig. 4: the six-node example DAG.

Reproduces the three uncomputing strategies of Fig. 3 and the two pebbling
grids of Fig. 4:

* the Bennett strategy: 6 pebbles, 10 steps;
* the space-optimised reordering (Fig. 3(b));
* the 4-pebble strategy with recomputation (Fig. 3(c) / Fig. 4 right,
  14 single-move steps in the paper; the SAT solver proves 12 suffice).
"""

from __future__ import annotations

from conftest import run_once

from repro.pebbling import EncodingOptions, bennett_strategy, eager_bennett_strategy, pebble_dag
from repro.visualize import render_strategy_grid
from repro.workloads import example_dag


def test_fig3_fig4_example_strategies(benchmark, record):
    dag = example_dag()

    def experiment():
        bennett = bennett_strategy(dag)
        reordered = eager_bennett_strategy(dag)
        constrained = pebble_dag(
            dag, 4, options=EncodingOptions(max_moves_per_step=1), time_limit=120
        )
        return bennett, reordered, constrained

    bennett, reordered, constrained = run_once(benchmark, experiment)

    assert bennett.max_pebbles == 6 and bennett.num_moves == 10
    assert constrained.found and constrained.strategy.max_pebbles <= 4

    lines = [
        "strategy                pebbles  steps(single-move)   paper",
        f"Bennett (Fig. 3a/4L)    {bennett.max_pebbles:7d}  {bennett.num_moves:19d}   6 pebbles / 10 steps",
        f"reordered (Fig. 3b)     {reordered.max_pebbles:7d}  {reordered.num_moves:19d}   5 qubits saved by order",
        f"4-pebble SAT (Fig. 4R)  {constrained.strategy.max_pebbles:7d}  "
        f"{constrained.num_steps:19d}   4 pebbles / 14 steps",
        "",
        "pebbling grid of the constrained strategy (cf. Fig. 4 right):",
        render_strategy_grid(constrained.strategy),
    ]
    record("fig3_fig4_example", lines)
