"""Tracked benchmark harness: current CDCL engine vs the frozen seed engine.

Runs a fixed instance set — the paper's Fig. 3/4 example DAG, SLP-derived
sweeps, ISCAS/bench-style circuits from :mod:`repro.logic`, and a pair of
pure-CNF stress instances — once with the frozen pre-overhaul engine
(:mod:`benchmarks.legacy_solver`) and once with the current
:class:`repro.sat.solver.CdclSolver`, through the *same* pebbling search
loops.  It checks that SAT/UNSAT verdicts and pebbling step counts are
identical on every instance and reports per-instance plus geometric-mean
wall-clock speedups.

Results are written to ``BENCH_<n>.json`` in the repository root (the next
free ``n``), so every future PR has a perf trajectory to compare against;
see EXPERIMENTS.md for the file format.

Usage::

    python benchmarks/run_bench.py             # full set, writes BENCH_<n>.json
    python benchmarks/run_bench.py --quick     # CI smoke subset, no file
    python benchmarks/run_bench.py --smoke     # alias for --quick (CI)
    python benchmarks/run_bench.py --quick --write
    python benchmarks/run_bench.py --repeat 3  # best-of-3 timing per engine

Since schema v2 the report also times the ``pebble-batch`` workload suite
at several ``--jobs`` widths (the portfolio scenario) and requires the
results to be identical at every width.

Since schema v3 the report additionally tracks the end-to-end compile
pipeline (SAT pebbling → circuit → Barenco lowering → simulation-based
verification → costs) on a fixed case set; every network-backed case must
verify, so the scenario guards compiler correctness as well as throughput.

Since schema v4 the report tracks the content-addressed result store
(:mod:`repro.store`): per fixed case it times the *same* geometric-refine
search cold (no store), warm (store seeded with the neighbouring budgets,
as a budget sweep would leave it) and as an exact cache hit, and requires
the warm search to issue strictly fewer SAT calls than the cold one with
identical steps.

Since schema v5 the report additionally tracks the pluggable backend layer
(:mod:`repro.sat.backend`): a backend-comparison scenario solves the small
instances on the native CDCL, the DPLL oracle and the checked-in external
DIMACS stub and requires identical verdicts and step counts everywhere,
and a core-guided scenario compares plain ``geometric-refine`` against its
``core_guided`` variant — same certified minimum, never more SAT calls,
strictly fewer on at least one case.

Since schema v6 the report tracks the fault-tolerant execution layer: a
chaos scenario re-runs the batch suite with the deterministic ``chaos``
fault-injection backend (a flaky first solve on every task, plus seeded
random crashes and slowdowns) under a :class:`RetryPolicy` and requires
verdict/step parity with the fault-free baseline, at least one retry
spent, and bounded wall-clock overhead; a spurious-timeout case must
still certify its minima through retries; and a deadline-preempted
service request must come back ``ok`` with a non-empty anytime partial
instead of an error.

Since schema v7 the report adds a ``profile`` scenario: every instance is
re-run on the current engine with per-phase timers enabled and the report
records the propagate/analyze/reduce/inprocess wall-clock split,
conflicts/sec and the LBD/inprocessing counters per instance — the
before/after of every solver-layout change lands in the trajectory, not
in prose.  Scenarios are individually selectable via ``--scenario``
(see ``--list-scenarios``), and the harness gates the trajectory: a
geometric-mean speedup more than 10% below the previous ``BENCH_<n>.json``
fails the run.

Since schema v8 the report adds a ``cubes`` scenario: each case is
solved once sequentially and once cube-and-conquer (``cubes=4,
jobs=4`` — an exhaustive assumption-cube cover, a shared SQLite bound
board, first-winner cancellation) and must certify the same minimum;
on at least two hard multi-second cases the cube search must also beat
the sequential wall-clock with at least one cross-lane shared-bound
hit.  Full (non-``--quick``) runs now default to ``--repeat 3``.

Since schema v9 the report adds an ``obs`` scenario guarding the
observability layer (:mod:`repro.obs`): the batch suite is solved with
tracing+metrics off and on and the per-task geometric-mean overhead must
stay under 5%; a traced portfolio run on the flaky chaos backend (forced
retries) and a traced cube-and-conquer run (first-winner cancellation)
must both merge into *complete* span trees — every span's parent
resolvable and every ``sat.call`` span carrying its bound and verdict.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import os
import re
import shlex
import sys
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Sequence

ROOT = Path(__file__).resolve().parent.parent
for entry in (str(ROOT / "src"), str(ROOT / "benchmarks")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from legacy_solver import LegacyCdclSolver  # noqa: E402

from repro.circuits.pipeline import compile_workload  # noqa: E402
from repro.pebbling.encoding import EncodingOptions  # noqa: E402
from repro.pebbling.portfolio import (  # noqa: E402
    PortfolioHealth,
    RetryPolicy,
    run_portfolio,
    tasks_from_suite,
)
from repro.pebbling.solver import ReversiblePebblingSolver  # noqa: E402
from repro.sat.backend import create_backend  # noqa: E402
from repro.sat.cnf import Cnf  # noqa: E402
from repro.sat.instances import pigeonhole, random_3sat  # noqa: E402
from repro.sat.solver import CdclSolver  # noqa: E402
from repro.pebbling.search import GeometricRefine  # noqa: E402
from repro.store import ResultStore  # noqa: E402
from repro.workloads import load_workload  # noqa: E402

SCHEMA_VERSION = 10

#: A full run fails when the geometric-mean speedup drops more than this
#: fraction below the previous tracked ``BENCH_<n>.json``.
TRAJECTORY_REGRESSION_THRESHOLD = 0.10

#: The checked-in DIMACS stub driven by the external backend scenario
#: (quoted: the spec is shlex-split by the backend, and checkout or
#: interpreter paths may contain spaces).
STUB_BACKEND_SPEC = (
    f"external:{shlex.quote(sys.executable)} "
    f"{shlex.quote(str(ROOT / 'tests' / 'external_stub_solver.py'))}"
)


# ---------------------------------------------------------------------------
# instance definitions
# ---------------------------------------------------------------------------
@dataclass
class Instance:
    """One benchmark instance: a callable exercised under both engines."""

    name: str
    kind: str  # "pebbling" or "cnf"
    quick: bool  # part of the --quick smoke subset
    run: Callable[[type], dict[str, object]] = field(repr=False, default=None)  # type: ignore[assignment]


def _cnf_instance(build: Callable[[], Cnf]) -> Callable[[type], dict[str, object]]:
    def run(engine: type) -> dict[str, object]:
        cnf = build()
        started = time.perf_counter()
        result = engine(cnf).solve()
        elapsed = time.perf_counter() - started
        return {
            "seconds": elapsed,
            "verdict": result.status.value,
            "steps": None,
            "conflicts": result.stats.conflicts,
            "propagations": result.stats.propagations,
        }

    return run


def _pebbling_instance(
    workload: str,
    pebbles: int,
    *,
    scale: float = 1.0,
    single_move: bool = False,
    time_limit: float = 120.0,
    step_schedule: str = "linear",
) -> Callable[[type], dict[str, object]]:
    def run(engine: type) -> dict[str, object]:
        dag = load_workload(workload, scale=scale)
        options = EncodingOptions(max_moves_per_step=1 if single_move else None)
        solver = ReversiblePebblingSolver(dag, options=options, solver_factory=engine)
        started = time.perf_counter()
        result = solver.solve(
            pebbles, time_limit=time_limit, step_schedule=step_schedule
        )
        elapsed = time.perf_counter() - started
        return {
            "seconds": elapsed,
            "verdict": result.outcome.value,
            "steps": result.num_steps,
            "conflicts": sum(record.conflicts for record in result.attempts),
            "sat_calls": len(result.attempts),
        }

    return run


def instance_set() -> list[Instance]:
    """The fixed benchmark instance set (see EXPERIMENTS.md)."""
    return [
        # Paper Fig. 3: the example DAG pebbled with 4 pebbles (SAT).
        Instance("fig2_p4", "pebbling", True,
                 _pebbling_instance("fig2", 4)),
        # Infeasible budget: a long incremental all-UNSAT sweep.
        Instance("fig2_p3_unsat_sweep", "pebbling", True,
                 _pebbling_instance("fig2", 3)),
        # Paper Fig. 4: single-move semantics on the example DAG.
        Instance("fig2_p4_single_move", "pebbling", False,
                 _pebbling_instance("fig2", 4, single_move=True)),
        # Fig. 6(a) AND-tree oracle, infeasible budget sweep.
        Instance("and9_p4_unsat_sweep", "pebbling", False,
                 _pebbling_instance("and9", 4)),
        # Fig. 6(a) AND-tree oracle with a feasible budget.
        Instance("and9_p5", "pebbling", False,
                 _pebbling_instance("and9", 5)),
        # Fig. 6(a) oracle under single-move (Fig. 4) semantics.
        Instance("and9_p4_single_move", "pebbling", False,
                 _pebbling_instance("and9", 4, single_move=True)),
        # SLP sweep: the Hadamard-operator straight-line program.
        Instance("hadamard_slp_p5", "pebbling", False,
                 _pebbling_instance("hadamard", 5)),
        # ISCAS/bench circuit (c17 profile from repro.logic).
        Instance("c17_p4", "pebbling", True,
                 _pebbling_instance("c17", 4)),
        Instance("c17_p3_unsat_sweep", "pebbling", False,
                 _pebbling_instance("c17", 3)),
        # Pure CNF: pigeonhole instances (conflict-analysis heavy, UNSAT).
        Instance("php_7_6", "cnf", True,
                 _cnf_instance(lambda: pigeonhole(7, 6))),
        Instance("php_8_7", "cnf", False,
                 _cnf_instance(lambda: pigeonhole(8, 7))),
        # Pure CNF: fixed-seed random 3-SAT near the phase transition.
        # Only UNSAT instances are tracked: on satisfiable random formulas
        # the time to *stumble onto* a model is a trajectory lottery that
        # says nothing about engine speed.
        Instance("rand3sat_v120_unsat", "cnf", False,
                 _cnf_instance(lambda: random_3sat(120, 552, seed=7))),
        Instance("rand3sat_v130_unsat", "cnf", False,
                 _cnf_instance(lambda: random_3sat(130, 598, seed=13))),
    ]


# ---------------------------------------------------------------------------
# portfolio scenario: the batch suite, jobs-wide
# ---------------------------------------------------------------------------
def run_portfolio_bench(
    *, quick: bool = False, jobs_list: Sequence[int] = (1, 4)
) -> dict[str, object]:
    """Time the batch suite at several ``--jobs`` widths (current engine only).

    Runs the ``pebble-batch`` workload suite once per entry of
    ``jobs_list`` and checks that verdicts and step counts are identical at
    every width — the parallel sweep must be a pure wall-clock
    transformation.  ``speedup`` is wall-clock of ``jobs_list[0]`` over the
    widest run.  Since the portfolio's single-core inline fallback, a host
    with one usable core (see ``usable_cores``) runs every width in
    process and the speedup sits at ~1.0 by construction — the x0.87
    pool-overhead regression BENCH_2 recorded on this host class is gone;
    on multi-core hosts the sweep still fans out and tracks the core
    count.
    """
    from repro.pebbling.portfolio import _usable_cores

    suite = "smoke" if quick else "default"
    tasks = tasks_from_suite(suite, time_limit=60.0)
    runs: dict[str, object] = {}
    reference: list[tuple[str, str, object]] | None = None
    results_match = True
    for jobs in jobs_list:
        started = time.perf_counter()
        records = run_portfolio(tasks, jobs=jobs)
        elapsed = time.perf_counter() - started
        rows = [(record.name, record.outcome, record.steps) for record in records]
        if any(record.outcome == "error" for record in records):
            # A crashed worker is a harness failure even when it crashes
            # identically at every width — never report a vacuous match.
            results_match = False
        if reference is None:
            reference = rows
        elif rows != reference:
            results_match = False
        runs[str(jobs)] = {
            "seconds": round(elapsed, 3),
            "solved": sum(1 for record in records if record.found),
        }
        print(f"portfolio suite={suite:8s} jobs={jobs}  {elapsed:8.3f}s  "
              f"{'ok' if results_match else 'RESULT MISMATCH'}")
    first = runs[str(jobs_list[0])]["seconds"]
    widest = runs[str(jobs_list[-1])]["seconds"]
    speedup = first / max(widest, 1e-9)
    assert reference is not None
    return {
        "suite": suite,
        "cpu_count": os.cpu_count(),
        "usable_cores": _usable_cores(),
        "tasks": [
            {"name": name, "verdict": outcome, "steps": steps}
            for name, outcome, steps in reference
        ],
        "jobs": runs,
        "speedup": round(speedup, 3),
        "results_match": results_match,
    }


# ---------------------------------------------------------------------------
# compile scenario: the end-to-end pipeline (current engine only)
# ---------------------------------------------------------------------------
#: (workload, budget, weighted, decompose, quick) pipeline cases.  All the
#: network-backed ones must verify by simulation; ``hadamard`` exercises the
#: structural (word-level SLP) path which has nothing to verify against.
COMPILE_CASES: list[tuple[str, int, bool, bool, bool]] = [
    ("fig2", 4, False, False, True),
    ("fig2", 4, False, True, True),
    ("fig2", 4, True, True, False),
    ("c17", 4, False, True, True),
    ("and9", 5, False, True, False),
    ("hadamard", 8, False, False, False),
]


def run_compile_bench(*, quick: bool = False) -> dict[str, object]:
    """Time the compile pipeline on the fixed case set.

    Each case runs the whole chain — SAT pebbling, circuit compilation,
    optional Barenco lowering, simulation-based verification and costing —
    under the current engine.  ``all_verified`` is ``False`` when any case
    fails to find a strategy or any network-backed case fails verification,
    so the scenario doubles as an end-to-end correctness gate.
    """
    rows: list[dict[str, object]] = []
    all_verified = True
    for workload, budget, weighted, decompose, is_quick in COMPILE_CASES:
        if quick and not is_quick:
            continue
        name = f"{workload}_p{budget}" + ("_w" if weighted else "") + (
            "_mct" if decompose else ""
        )
        started = time.perf_counter()
        report = compile_workload(
            workload,
            pebbles=budget,
            weighted=weighted,
            decompose=decompose,
            time_limit=60.0,
        )
        elapsed = time.perf_counter() - started
        ok = report.found and report.verified is not False
        all_verified = all_verified and ok
        rows.append(
            {
                "name": name,
                "seconds": round(elapsed, 3),
                "outcome": report.outcome,
                "steps": report.steps,
                "qubits": report.qubits,
                "gates": report.gates,
                "t_count": report.t_count,
                "verified": report.verified,
                "sat_calls": report.sat_calls,
            }
        )
        verdict = "ok" if ok else "FAILED"
        print(f"compile {name:16s} {elapsed:8.3f}s  "
              f"gates={report.gates!s:>4s} t={report.t_count!s:>5s}  {verdict}")
    return {"cases": rows, "all_verified": all_verified}


# ---------------------------------------------------------------------------
# cache scenario: cold vs warm-started vs cache-hit searches (schema v4)
# ---------------------------------------------------------------------------
#: (workload, low budget, mid budget, high budget, quick) cache cases.  All
#: three budgets must be feasible; the store is seeded with the low/high
#: solves (the state a budget sweep leaves behind) and the mid solve is
#: measured cold, warm and as an exact hit.
CACHE_CASES: list[tuple[str, int, int, int, bool]] = [
    ("fig2", 4, 5, 6, True),
    ("c17", 5, 6, 7, True),
    ("and9", 6, 7, 8, False),
    ("hadamard", 5, 6, 7, False),
]


def run_cache_bench(*, quick: bool = False) -> dict[str, object]:
    """Measure what the result store buys on geometric-refine searches.

    Per case, the mid budget is solved three ways:

    * **cold** — no store: the baseline SAT-call count;
    * **warm** — against a store seeded with the neighbouring budgets:
      the certified floor from the tighter budget and the achievable
      ceiling from the looser one must *strictly* reduce the SAT calls;
    * **hit** — repeated verbatim: answered from the store without a
      solver, byte-identical (JSON-compared) to the stored warm result.

    ``cache_ok`` requires identical step counts everywhere, strictly fewer
    warm SAT calls on every case, and byte-identical hits.
    """
    rows: list[dict[str, object]] = []
    cache_ok = True
    for workload, low, mid, high, is_quick in CACHE_CASES:
        if quick and not is_quick:
            continue
        dag = load_workload(workload)

        def _solve(budget: int, store: ResultStore | None):
            solver = ReversiblePebblingSolver(dag)
            started = time.perf_counter()
            result = solver.solve(
                budget, strategy="geometric-refine", time_limit=120.0, store=store
            )
            return result, time.perf_counter() - started

        cold, cold_seconds = _solve(mid, None)
        with ResultStore(":memory:") as store:
            for budget in (low, high):
                _solve(budget, store)
            warm, warm_seconds = _solve(mid, store)
            hit, hit_seconds = _solve(mid, store)
            hit_identical = json.dumps(
                warm.to_json(), sort_keys=True
            ) == json.dumps(hit.to_json(), sort_keys=True)
            hit_served = store.session["hits"] >= 1
        ok = (
            cold.found
            and warm.found
            and cold.num_steps == warm.num_steps == hit.num_steps
            and len(warm.attempts) < len(cold.attempts)
            and hit_identical
            and hit_served
        )
        cache_ok = cache_ok and ok
        rows.append(
            {
                "workload": workload,
                "budgets": {"low": low, "mid": mid, "high": high},
                "steps": cold.num_steps,
                "cold": {"sat_calls": len(cold.attempts),
                         "seconds": round(cold_seconds, 3)},
                "warm": {"sat_calls": len(warm.attempts),
                         "seconds": round(warm_seconds, 3)},
                "hit": {"sat_calls": 0, "seconds": round(hit_seconds, 3),
                        "byte_identical": hit_identical},
                "ok": ok,
            }
        )
        print(f"cache {workload:10s} p{mid}  cold {len(cold.attempts)} calls "
              f"{cold_seconds:7.3f}s  warm {len(warm.attempts)} calls "
              f"{warm_seconds:7.3f}s  hit {hit_seconds:7.3f}s  "
              f"{'ok' if ok else 'FAILED'}")
    return {"cases": rows, "cache_ok": cache_ok}


# ---------------------------------------------------------------------------
# backend scenario: verdict/step parity across backends (schema v5)
# ---------------------------------------------------------------------------
#: (name, workload, budget, single_move, max_steps, dpll_max_steps, quick)
#: — every instance of the ``default`` batch suite, solved on every
#: applicable backend.  UNSAT sweeps carry a ``max_steps`` cap so the
#: subprocess-per-call external stub stays tractable (the cap applies to
#: every backend of the case, so verdicts remain comparable).
#: ``dpll_max_steps`` gates the exponential DPLL oracle: ``None`` skips it
#: (its exhaustive UNSAT proofs blow up beyond fig2-sized frames — a
#: 6-step fig2 frame already takes ~1 s, a 7-step one ~30 s), a number
#: tightens *its* sweep cap; capped sweeps still agree on the
#: (step-limit, None) verdict.
BACKEND_CASES: list[tuple[str, str, int, bool, "int | None", "int | None", bool]] = [
    ("fig2_p4", "fig2", 4, False, None, 6, True),
    ("fig2_p3", "fig2", 3, False, 12, 5, True),
    ("fig2_p4_sm", "fig2", 4, True, 12, None, False),
    ("and9_p5", "and9", 5, False, None, None, False),
    ("and9_p4", "and9", 4, False, 12, None, False),
    ("and9_p4_sm", "and9", 4, True, 12, None, False),
    ("hadamard_p5", "hadamard", 5, False, 12, None, False),
    ("c17_p4", "c17", 4, False, None, None, True),
    ("c17_p3", "c17", 3, False, 12, None, False),
]


def run_backend_bench(*, quick: bool = False) -> dict[str, object]:
    """Solve every default-suite instance on every applicable backend.

    ``verdicts_match`` requires byte-equal (outcome, steps) on every
    backend that ran a case; per-backend wall-clock is reported so the
    external-process overhead stays visible in the trajectory.
    """
    rows: list[dict[str, object]] = []
    verdicts_match = True
    for name, workload, budget, single_move, cap, dpll_cap, is_quick in BACKEND_CASES:
        if quick and not is_quick:
            continue
        dag = load_workload(workload)
        options = EncodingOptions(max_moves_per_step=1 if single_move else None)
        lanes: list[tuple[str, str, "int | None"]] = [
            ("cdcl", "cdcl", cap),
            ("external-stub", STUB_BACKEND_SPEC, cap),
        ]
        if dpll_cap is not None:
            lanes.insert(1, ("dpll", "dpll", min(cap, dpll_cap) if cap else dpll_cap))
        runs: dict[str, dict[str, object]] = {}
        reference: tuple[str, object] | None = None
        for label, spec, max_steps in lanes:
            solver = ReversiblePebblingSolver(dag, options=options, backend=spec)
            started = time.perf_counter()
            result = solver.solve(budget, time_limit=120.0, max_steps=max_steps)
            elapsed = time.perf_counter() - started
            verdict = (result.outcome.value, result.num_steps)
            if reference is None:
                reference = verdict
            elif verdict != reference:
                verdicts_match = False
            runs[label] = {
                "verdict": result.outcome.value,
                "steps": result.num_steps,
                "seconds": round(elapsed, 3),
                "sat_calls": len(result.attempts),
            }
        assert reference is not None
        ok = all(
            (run["verdict"], run["steps"]) == reference for run in runs.values()
        )
        rows.append({"name": name, "runs": runs, "ok": ok})
        summary = "  ".join(
            f"{label}={run['verdict']}/{run['steps']} {run['seconds']:.3f}s"
            for label, run in runs.items()
        )
        print(f"backend {name:12s} {summary}  {'ok' if ok else 'MISMATCH'}")
    return {"cases": rows, "verdicts_match": verdicts_match}


# ---------------------------------------------------------------------------
# simplify scenario: per-technique attribution of the simplification engine
# ---------------------------------------------------------------------------
#: (name, workload, budget, single_move, max_steps, quick) cases for the
#: simplification ablations through the incremental pebbling loop.  These
#: gate *soundness*: ablating a technique must never change a pebbling
#: verdict or a certified step count.  Their per-bound queries are too
#: short for the conflict-counted inprocessing trigger, so the technique
#: counters mostly stay at zero here — attribution comes from the direct
#: CNF cases below, whose single long solves engage the engine for real.
SIMPLIFY_CASES: list[tuple[str, str, int, bool, "int | None", bool]] = [
    ("fig2_p4", "fig2", 4, False, None, True),
    ("c17_p4", "c17", 4, False, None, True),
    ("and9_p4_sm", "and9", 4, True, None, False),
    ("hadamard_p5", "hadamard", 5, False, None, False),
]

#: (name, build, quick) direct-CNF cases: one uninterrupted solve each,
#: long enough that root-level inprocessing fires.  Pigeonhole is the
#: BVE/vivification showcase (dense symmetric clauses, conflict-analysis
#: heavy); random 3-SAT near the phase transition exercises chronological
#: backtracking and the rephasing lane on an unstructured formula.
SIMPLIFY_CNF_CASES: list[tuple[str, Callable[[], Cnf], bool]] = [
    ("php_8_7", lambda: pigeonhole(8, 7), False),
    ("rand3sat_v130", lambda: random_3sat(130, 598, seed=13), False),
]

#: Ablation lanes: the default engine (every technique at its shipped
#: setting) against one technique disabled at a time, plus the rephasing
#: schedule that measured out negative on this suite (kept visible in the
#: report precisely because it is *not* in the defaults; see
#: EXPERIMENTS.md).
SIMPLIFY_CONFIGS: list[tuple[str, str]] = [
    ("full", "cdcl"),
    ("no_bve", "cdcl:bve=0"),
    ("no_vivify", "cdcl:vivify=0"),
    ("no_chrono", "cdcl:chrono=0"),
    ("rephase", "cdcl:rephase=2048"),
]

#: Technique counters folded into each simplify row.
SIMPLIFY_COUNTERS = (
    "eliminated_variables", "restored_variables", "bve_resolvents",
    "vivified_clauses", "chrono_backtracks", "rephases",
)


def run_simplify_bench(*, quick: bool = False) -> dict[str, object]:
    """Ablate each simplification technique and attribute its cost/benefit.

    Every case runs once per config; ``simplify_ok`` requires byte-equal
    (outcome, steps) across all of them — turning a technique off must
    never change an answer, only the time it takes.  ``attribution`` sums
    wall-clock per ablation and reports it relative to the full engine
    (``vs_full`` > 1 means the disabled technique was paying for itself).
    """
    rows: list[dict[str, object]] = []
    simplify_ok = True
    totals = {label: 0.0 for label, _ in SIMPLIFY_CONFIGS}

    def record(name: str, runs: dict[str, dict[str, object]], ok: bool) -> None:
        nonlocal simplify_ok
        simplify_ok = simplify_ok and ok
        rows.append({"name": name, "runs": runs, "ok": ok})
        summary = "  ".join(
            f"{label}={run['seconds']:.3f}s" for label, run in runs.items()
        )
        print(f"simplify {name:14s} {summary}  {'ok' if ok else 'MISMATCH'}")

    for name, workload, budget, single_move, cap, is_quick in SIMPLIFY_CASES:
        if quick and not is_quick:
            continue
        dag = load_workload(workload)
        options = EncodingOptions(max_moves_per_step=1 if single_move else None)
        runs: dict[str, dict[str, object]] = {}
        reference: tuple[str, object] | None = None
        ok = True
        for label, spec in SIMPLIFY_CONFIGS:
            solver = ReversiblePebblingSolver(dag, options=options, backend=spec)
            started = time.perf_counter()
            result = solver.solve(budget, time_limit=120.0, max_steps=cap)
            elapsed = time.perf_counter() - started
            totals[label] += elapsed
            counters = dict.fromkeys(SIMPLIFY_COUNTERS, 0)
            for attempt in result.attempts:
                for key in SIMPLIFY_COUNTERS:
                    counters[key] += int(attempt.solver_stats.get(key, 0))
            verdict = (result.outcome.value, result.num_steps)
            if reference is None:
                reference = verdict
            elif verdict != reference:
                ok = False
            runs[label] = {
                "verdict": result.outcome.value,
                "steps": result.num_steps,
                "seconds": round(elapsed, 3),
                "counters": counters,
            }
        record(name, runs, ok)

    for name, build, is_quick in SIMPLIFY_CNF_CASES:
        if quick and not is_quick:
            continue
        instance = build()
        runs = {}
        cnf_reference: str | None = None
        ok = True
        for label, spec in SIMPLIFY_CONFIGS:
            backend = create_backend(spec)
            for clause in instance.clauses:
                backend.add_clause(clause)
            started = time.perf_counter()
            result = backend.solve(time_limit=120.0)
            elapsed = time.perf_counter() - started
            totals[label] += elapsed
            reported = backend.counters()
            counters = {
                key: int(reported.get(key) or 0) for key in SIMPLIFY_COUNTERS
            }
            verdict = result.status.value
            if cnf_reference is None:
                cnf_reference = verdict
            elif verdict != cnf_reference:
                ok = False
            runs[label] = {
                "verdict": verdict,
                "steps": None,
                "seconds": round(elapsed, 3),
                "counters": counters,
            }
        record(name, runs, ok)
    full_seconds = totals["full"]
    attribution: dict[str, dict[str, object]] = {}
    for label, _ in SIMPLIFY_CONFIGS:
        if label == "full":
            continue
        attribution[label] = {
            "seconds": round(totals[label], 3),
            "vs_full": (
                round(totals[label] / full_seconds, 3)
                if full_seconds > 0 else None
            ),
        }
    return {
        "cases": rows,
        "simplify_ok": simplify_ok,
        "full_seconds": round(full_seconds, 3),
        "attribution": attribution,
    }


# ---------------------------------------------------------------------------
# core-guided scenario: plain vs core-guided GeometricRefine (schema v5)
# ---------------------------------------------------------------------------
#: (workload, budget, quick) cases for the core-guided comparison; all are
#: feasible budgets, so both searches certify a minimum.
CORE_GUIDED_CASES: list[tuple[str, int, bool]] = [
    ("fig2", 4, True),
    ("c17", 4, True),
    ("c17", 5, False),
    ("and9", 5, False),
    ("and9", 6, False),
]


def run_core_guided_bench(*, quick: bool = False) -> dict[str, object]:
    """Compare plain ``geometric-refine`` against the core-guided variant.

    ``core_ok`` requires, per case, the same certified minimal step count
    with *at most* the plain variant's SAT calls; across the whole
    scenario at least one case must save calls strictly (the ladder cores
    earn their keep, they do not just break even).
    """
    rows: list[dict[str, object]] = []
    core_ok = True
    strictly_fewer = 0
    for workload, budget, is_quick in CORE_GUIDED_CASES:
        if quick and not is_quick:
            continue
        dag = load_workload(workload)

        def _timed(strategy):
            solver = ReversiblePebblingSolver(dag)
            started = time.perf_counter()
            result = solver.solve(budget, strategy=strategy, time_limit=120.0)
            return result, time.perf_counter() - started

        plain, plain_seconds = _timed(GeometricRefine())
        core, core_seconds = _timed(GeometricRefine(core_guided=True))
        ok = (
            plain.found
            and core.found
            and plain.minimal
            and core.minimal
            and plain.num_steps == core.num_steps
            and len(core.attempts) <= len(plain.attempts)
        )
        if ok and len(core.attempts) < len(plain.attempts):
            strictly_fewer += 1
        core_ok = core_ok and ok
        rows.append(
            {
                "name": f"{workload}_p{budget}",
                "steps": plain.num_steps,
                "plain": {"sat_calls": len(plain.attempts),
                          "seconds": round(plain_seconds, 3)},
                "core_guided": {"sat_calls": len(core.attempts),
                                "seconds": round(core_seconds, 3)},
                "ok": ok,
            }
        )
        print(f"core-guided {workload:10s} p{budget}  plain {len(plain.attempts)} "
              f"calls {plain_seconds:7.3f}s  core {len(core.attempts)} calls "
              f"{core_seconds:7.3f}s  {'ok' if ok else 'FAILED'}")
    core_ok = core_ok and strictly_fewer >= 1
    return {
        "cases": rows,
        "strictly_fewer_cases": strictly_fewer,
        "core_ok": core_ok,
    }


# ---------------------------------------------------------------------------
# chaos scenario: fault injection, retries, anytime answers (schema v6)
# ---------------------------------------------------------------------------
#: Seed of every chaos lane; the injected fault schedule is a pure function
#: of (seed, task name, attempt, call index), so the scenario is exactly
#: reproducible.
CHAOS_SEED = 7

#: The suite-wide fault mix: a guaranteed flaky failure on every task's
#: first attempt, a ~0.1% crash chance and a 0.5 ms slowdown per SAT call.
CHAOS_SPEC = f"chaos:{CHAOS_SEED},flaky=1,crash=0.001,delay=0.0005"

#: The spurious-timeout case: 30% of SAT calls return UNKNOWN, so whole
#: search attempts die inconclusive and only retries can certify minima.
#: The seed differs from :data:`CHAOS_SEED` — it is chosen so the schedule
#: actually forces retries on the smoke tasks (the gate requires them:
#: a schedule that injects nothing would certify vacuously).
CHAOS_UNKNOWN_SPEC = "chaos:19,unknown=0.3"

#: The retry budget both chaos lanes run under (small backoff: the bench
#: measures fault-recovery, not sleeping).
CHAOS_RETRY = RetryPolicy(max_attempts=6, base_delay=0.005, max_delay=0.05)


def _deadline_probe() -> dict[str, object]:
    """One deadline-preempted service request, as a structured gate.

    ``and9_p4_sm`` needs ~1 s of sweep on this host class; a 0.2 s deadline
    preempts it mid-search.  The gate requires the graceful degradation the
    service promises: status ``ok`` (not an error), ``complete`` false, a
    non-empty anytime ``partial`` snapshot, and the preemption visible in
    the health counters.
    """
    from repro.service import JobRequest, PebblingService

    async def _run():
        async with PebblingService(workers=1, batch_window=0.0) as service:
            request = JobRequest(
                kind="pebble", workload="and9", budget=4, single_move=True,
                time_limit=60.0, deadline=0.2,
            )
            result = await service.submit(request)
            return result, service.health()

    result, health = asyncio.run(_run())
    payload = result.payload or {}
    ok = (
        result.ok
        and payload.get("complete") is False
        and bool(payload.get("partial"))
        and health["stats"]["preempted"] >= 1
        and health["stats"]["partial_answers"] >= 1
    )
    return {
        "request": "and9_p4_sm",
        "deadline": 0.2,
        "status": result.status,
        "outcome": payload.get("outcome"),
        "partial": payload.get("partial"),
        "ok": ok,
    }


def run_chaos_bench(*, quick: bool = False) -> dict[str, object]:
    """Prove certified minima survive injected faults (current engine only).

    Three gates, folded into ``chaos_ok``:

    * **parity** — the batch suite re-run on the ``chaos`` backend (flaky
      first attempts, seeded crashes, per-call slowdowns) under
      :data:`CHAOS_RETRY` must reproduce the fault-free (outcome, steps)
      verdict on every task, complete, with at least one retry spent and
      wall-clock bounded by ``10x + 5 s`` of the baseline;
    * **spurious timeouts** — the smoke tasks with 30% of SAT calls
      returning UNKNOWN must still certify their minima through retries
      (and at least one retry must actually have been forced);
    * **deadline probe** — see :func:`_deadline_probe`.
    """
    suite = "smoke" if quick else "default"
    baseline_tasks = tasks_from_suite(suite, time_limit=60.0)
    started = time.perf_counter()
    baseline = run_portfolio(baseline_tasks)
    baseline_seconds = time.perf_counter() - started
    chaos_tasks = tasks_from_suite(suite, time_limit=60.0, backend=CHAOS_SPEC)
    health = PortfolioHealth()
    started = time.perf_counter()
    chaos = run_portfolio(chaos_tasks, retry=CHAOS_RETRY, health=health)
    chaos_seconds = time.perf_counter() - started
    rows: list[dict[str, object]] = []
    parity = True
    for base, record in zip(baseline, chaos):
        ok = (
            record.outcome == base.outcome
            and record.steps == base.steps
            and record.complete
            and record.error is None
        )
        parity = parity and ok
        rows.append(
            {
                "name": base.name,
                "verdict": base.outcome,
                "steps": base.steps,
                "chaos_verdict": record.outcome,
                "chaos_steps": record.steps,
                "retries": record.retries,
                "ok": ok,
            }
        )
        print(f"chaos {base.name:16s} baseline={base.outcome}/{base.steps}  "
              f"chaos={record.outcome}/{record.steps} retries={record.retries}  "
              f"{'ok' if ok else 'MISMATCH'}")
    overhead = chaos_seconds / max(baseline_seconds, 1e-9)
    overhead_ok = chaos_seconds <= baseline_seconds * 10.0 + 5.0
    unknown_tasks = tasks_from_suite(
        "smoke", time_limit=60.0, backend=CHAOS_UNKNOWN_SPEC
    )
    unknown_records = run_portfolio(unknown_tasks, retry=CHAOS_RETRY)
    unknown_ok = all(
        record.outcome == "solution" and record.complete
        for record in unknown_records
    ) and any(record.retries >= 1 for record in unknown_records)
    print(f"chaos spurious-timeout smoke: "
          f"{'certified' if unknown_ok else 'LOST MINIMA'} "
          f"(retries {[record.retries for record in unknown_records]})")
    probe = _deadline_probe()
    print(f"chaos deadline probe {probe['request']}: status={probe['status']} "
          f"outcome={probe['outcome']}  "
          f"{'partial answer' if probe['ok'] else 'FAILED'}")
    chaos_ok = (
        parity
        and health.retry_attempts >= 1
        and overhead_ok
        and unknown_ok
        and bool(probe["ok"])
    )
    print(f"chaos suite={suite}: baseline {baseline_seconds:.3f}s  "
          f"chaos {chaos_seconds:.3f}s (x{overhead:.2f})  "
          f"retries={health.retry_attempts}  "
          f"{'ok' if chaos_ok else 'FAILED'}")
    return {
        "suite": suite,
        "spec": CHAOS_SPEC,
        "unknown_spec": CHAOS_UNKNOWN_SPEC,
        "retry_policy": {
            "max_attempts": CHAOS_RETRY.max_attempts,
            "base_delay": CHAOS_RETRY.base_delay,
            "max_delay": CHAOS_RETRY.max_delay,
        },
        "tasks": rows,
        "baseline_seconds": round(baseline_seconds, 3),
        "chaos_seconds": round(chaos_seconds, 3),
        "overhead": round(overhead, 3),
        "retry_attempts": health.retry_attempts,
        "retried_tasks": health.retried_tasks,
        "pool_rebuilds": health.pool_rebuilds,
        "spurious_timeouts_certified": unknown_ok,
        "deadline_probe": probe,
        "chaos_ok": chaos_ok,
    }


# ---------------------------------------------------------------------------
# profile scenario: per-phase time splits on the current engine (schema v7)
# ---------------------------------------------------------------------------
#: The per-phase timers maintained by :class:`CdclSolver` in profile mode
#: (``bve`` and ``vivify`` are sub-slices of ``inprocess``).
PROFILE_PHASES = ("propagate", "analyze", "reduce", "inprocess", "bve", "vivify")

#: Phases summed for the "timed solver work" denominator — excludes the
#: sub-slices so no second is counted twice.
PROFILE_TOP_PHASES = ("propagate", "analyze", "reduce", "inprocess")

#: Per-solve counters accumulated across every SAT call of an instance.
PROFILE_COUNTERS = (
    "conflicts", "propagations", "decisions", "restarts",
    "learned_clauses", "deleted_clauses",
    "lbd_glue", "lbd_mid", "lbd_high", "lbd_sum",
    "subsumed_clauses", "strengthened_clauses", "root_simplified",
    "inprocessings",
    "eliminated_variables", "restored_variables", "bve_resolvents",
    "vivified_clauses", "chrono_backtracks", "rephases",
)


def _profiled_engine() -> tuple[type, dict[str, float]]:
    """A ``CdclSolver`` subclass that folds per-solve stats into one dict.

    The pebbling searches build many solvers (one per step frame) and the
    solver resets its stats on every ``solve`` call, so the accumulator
    hooks the call itself: whatever the search loops do, every phase timer
    and counter of every SAT call of the instance ends up in ``totals``.
    """
    totals: dict[str, float] = {phase: 0.0 for phase in PROFILE_PHASES}
    totals.update({counter: 0 for counter in PROFILE_COUNTERS})
    totals["solve_calls"] = 0

    class ProfiledCdclSolver(CdclSolver):
        def __init__(self, *args, **kwargs):
            kwargs.setdefault("profile", True)
            super().__init__(*args, **kwargs)

        def solve(self, *args, **kwargs):
            result = super().solve(*args, **kwargs)
            stats = result.stats
            totals["solve_calls"] += 1
            for counter in PROFILE_COUNTERS:
                totals[counter] += getattr(stats, counter)
            for phase, seconds in (stats.phase_times or {}).items():
                totals[phase] += seconds
            return result

    return ProfiledCdclSolver, totals


def run_profile_bench(*, quick: bool = False) -> dict[str, object]:
    """Re-run every instance with per-phase timers on the current engine.

    Each instance row records where the wall-clock went — the
    propagate/analyze/reduce/inprocess split (absolute seconds and the
    share of the total timed solver work), conflicts/sec, and the
    LBD/inprocessing counters — so each solver-layout change is measured
    per move, per instance, in the tracked BENCH file.
    ``phases_present`` confirms every row carries the full split.
    """
    instances = [
        instance for instance in instance_set() if instance.quick or not quick
    ]
    rows: list[dict[str, object]] = []
    phases_present = True
    for instance in instances:
        engine, totals = _profiled_engine()
        started = time.perf_counter()
        outcome = instance.run(engine)
        elapsed = time.perf_counter() - started
        timed = sum(totals[phase] for phase in PROFILE_TOP_PHASES)
        phases = {
            phase: {
                "seconds": round(totals[phase], 4),
                "share": round(totals[phase] / timed, 3) if timed > 0 else 0.0,
            }
            for phase in PROFILE_PHASES
        }
        conflicts = int(totals["conflicts"])
        row = {
            "name": instance.name,
            "kind": instance.kind,
            "seconds": round(elapsed, 3),
            "verdict": outcome["verdict"],
            "steps": outcome["steps"],
            "solve_calls": int(totals["solve_calls"]),
            "conflicts": conflicts,
            "conflicts_per_sec": round(conflicts / elapsed, 1) if elapsed > 0 else 0.0,
            "phases": phases,
            "counters": {
                counter: int(totals[counter])
                for counter in PROFILE_COUNTERS
                if counter != "conflicts"
            },
        }
        phases_present = phases_present and set(phases) == set(PROFILE_PHASES)
        rows.append(row)
        split = "  ".join(
            f"{phase[:4]}={phases[phase]['seconds']:7.3f}s"
            for phase in PROFILE_TOP_PHASES
        )
        print(f"profile {instance.name:26s} {elapsed:8.3f}s  {split}  "
              f"{row['conflicts_per_sec']:9.1f} confl/s")
    return {"instances": rows, "phases_present": phases_present}


# ---------------------------------------------------------------------------
# cubes scenario: cube-and-conquer vs sequential on one instance (schema v8)
# ---------------------------------------------------------------------------
#: (name, workload, budget, time limit, hard, quick) cube cases.  Easy
#: cases gate on verdict/minimum parity only (at millisecond scale the
#: pool spawn dominates and a speedup number would measure the OS, not
#: the search); *hard* cases are multi-second searches where the gate
#: additionally requires, on two or more of them, a wall-clock
#: ``speedup > 1.0`` — or, on a host with fewer cores than lanes (where
#: four time-shared lanes cannot beat one by parallelism), the
#: oversubscribed criterion documented in ``run_cubes_bench``.
CUBE_CASES: list[tuple[str, str, int, float, bool, bool]] = [
    ("fig2_p4", "fig2", 4, 60.0, False, True),
    ("c17_p4", "c17", 4, 60.0, False, True),
    ("and9_p5", "and9", 5, 60.0, False, False),
    ("kummer_double_p14", "kummer-double", 14, 120.0, True, False),
    ("edwards_add_p9", "edwards-add", 9, 120.0, True, False),
]

#: Oversubscribed hosts: the cube run must stay within this factor of
#: the sequential wall clock.  Four lanes re-deriving the full ladder
#: each would cost ~4x by construction — that is the zero-pruning
#: ceiling, not a defect — and paired best-of-``repeat`` draws on the
#: 1-core host measure anywhere from 0.7x to 4.6x of sequential
#: depending on how the lane schedule interleaves the bound sharing
#: (the same binary, same instance, minutes apart).  A bound below the
#: zero-pruning ceiling therefore gates on scheduler luck; 5x sits just
#: above it and still catches super-linear blowup (board contention,
#: lock spin, a broken striping schedule costing more than the lanes'
#: own redundancy).  The gate takes the best of ``repeat`` PAIRED
#: attempts — sequential and cubed back-to-back, so both sides see the
#: same host-load regime.
CUBE_OVERSUBSCRIBED_SLOWDOWN = 5.0


def run_cubes_bench(*, quick: bool = False, repeat: int = 1) -> dict[str, object]:
    """Race ``cubes=4, jobs=4`` against the sequential search per instance.

    Both sides must certify the same minimum (outcome, steps, and
    minimality whenever the sequential search certified it).  Easy cases
    are repeated ``repeat`` times (best-of, like the engine scenario).
    Hard cases run ``repeat`` *paired* attempts — sequential then cubed
    back-to-back, parity required on every attempt, the pair with the
    best speedup reported.  They used to run once on the premise that
    minute-scale searches dominate timer noise; measured false: identical
    cubed runs span ~2x wall clock on a 1-core host because the lane
    interleaving (not the timer) decides how much cross-lane pruning
    happens, so a single draw straddles the oversubscribed allowance.
    Pairing also cancels slow host-load drift — each ratio compares two
    solves that ran seconds apart, not a lucky sequential from one load
    regime against an unlucky cubed from another.

    ``cubes_ok`` additionally requires at least two *hard-case wins*.
    On a host with at least as many cores as lanes a win is wall-clock
    ``speedup > 1.0`` plus a cross-lane ``shared_bound_hit`` (the board
    actually transferred a bound between lanes, it did not just observe
    its own writes).  On an **oversubscribed** host (fewer cores than
    lanes — the lanes time-share one core, so wall-clock speedup would
    measure the scheduler, not the search) a win instead requires the
    cube machinery to demonstrably engage and stay cheap: the same
    parity, a shared-bound hit or a first-winner cancellation, a
    board-certified minimum, and wall clock within
    ``CUBE_OVERSUBSCRIBED_SLOWDOWN`` of sequential.  Engagement is
    judged across *every* paired attempt, not just the timing-selected
    best pair: whether the board prunes a given draw depends on lane
    interleaving, and the fastest pair can legitimately be one where no
    lane needed the shared bound.  The report records
    ``host_cores``/``oversubscribed`` plus per-case ``engaged`` so
    readers can tell which claim a run makes.
    """
    rows: list[dict[str, object]] = []
    cubes_ok = True
    hard_wins = 0
    hard_total = 0
    host_cores = os.cpu_count() or 1
    oversubscribed = host_cores < 4
    for name, workload, budget, time_limit, hard, is_quick in CUBE_CASES:
        if quick and not is_quick:
            continue
        dag = load_workload(workload)
        tries = max(1, repeat)

        def _best(run):
            best = None
            for _ in range(tries):
                outcome = run()
                if best is None or outcome["seconds"] < best["seconds"]:
                    best = outcome
            return best

        def _solve(cubes):
            solver = ReversiblePebblingSolver(dag)
            started = time.perf_counter()
            result = solver.solve(
                budget,
                time_limit=time_limit,
                cubes=cubes,
                cube_jobs=4 if cubes else 1,
            )
            meta = result.cubes or {}
            return {
                "seconds": time.perf_counter() - started,
                "outcome": result.outcome.value,
                "steps": result.num_steps,
                "minimal": result.minimal,
                "sat_calls": len(result.attempts),
                "shared_bound_hits": result.shared_bound_hits,
                "cancelled_lanes": len(meta.get("cancelled", ())),
            }

        def _pair_parity(seq_run, cube_run):
            return (
                cube_run["outcome"] == seq_run["outcome"]
                and cube_run["steps"] == seq_run["steps"]
                and (not seq_run["minimal"] or cube_run["minimal"])
            )

        if hard:
            # Paired attempts: every attempt must certify parity, the best
            # attempt ratio carries the timing gate (see the docstring).
            sequential = cubed = None
            speedup = 0.0
            attempt_speedups: list[float] = []
            all_parity = True
            any_engaged = False
            for _ in range(tries):
                seq_run = _solve(None)
                cube_run = _solve(4)
                ratio = seq_run["seconds"] / max(cube_run["seconds"], 1e-9)
                attempt_speedups.append(round(ratio, 3))
                all_parity = all_parity and _pair_parity(seq_run, cube_run)
                any_engaged = any_engaged or (
                    cube_run["shared_bound_hits"] >= 1
                    or cube_run["cancelled_lanes"] >= 1
                )
                if sequential is None or ratio > speedup:
                    speedup = ratio
                    sequential, cubed = seq_run, cube_run
        else:
            sequential = _best(lambda: _solve(None))
            cubed = _best(lambda: _solve(4))
            speedup = sequential["seconds"] / max(cubed["seconds"], 1e-9)
            attempt_speedups = [round(speedup, 3)]
            all_parity = True
            any_engaged = (
                cubed["shared_bound_hits"] >= 1
                or cubed["cancelled_lanes"] >= 1
            )
        hits = cubed["shared_bound_hits"]
        parity = all_parity and (
            cubed["outcome"] == sequential["outcome"]
            and cubed["steps"] == sequential["steps"]
            and (not sequential["minimal"] or cubed["minimal"])
        )
        cubes_ok = cubes_ok and parity
        win = False
        if hard:
            hard_total += 1
            # Engagement (a shared-bound hit or a cancellation) is a
            # mechanism property of the *instance*, judged across every
            # paired attempt: the best pair is selected for timing, and
            # a run the board happened not to prune can still be the
            # fastest draw on an oversubscribed host.
            engaged = any_engaged
            if oversubscribed:
                win = (
                    parity
                    and engaged
                    and cubed["minimal"]
                    and speedup * CUBE_OVERSUBSCRIBED_SLOWDOWN >= 1.0
                )
            else:
                win = parity and speedup > 1.0 and engaged
            hard_wins += int(win)
        rows.append(
            {
                "name": name,
                "hard": hard,
                "steps": sequential["steps"],
                "sequential": {
                    "seconds": round(sequential["seconds"], 3),
                    "outcome": sequential["outcome"],
                    "minimal": sequential["minimal"],
                    "sat_calls": sequential["sat_calls"],
                },
                "cubed": {
                    "seconds": round(cubed["seconds"], 3),
                    "outcome": cubed["outcome"],
                    "minimal": cubed["minimal"],
                    "sat_calls": cubed["sat_calls"],
                    "shared_bound_hits": hits,
                    "cancelled_lanes": cubed["cancelled_lanes"],
                },
                "speedup": round(speedup, 3),
                "parity": parity,
                **(
                    {
                        "hard_win": win,
                        "attempt_speedups": attempt_speedups,
                        "engaged": any_engaged,
                    }
                    if hard
                    else {}
                ),
            }
        )
        print(f"cubes {name:20s} seq {sequential['seconds']:8.3f}s  "
              f"cubed {cubed['seconds']:8.3f}s  x{speedup:5.2f}  hits={hits}  "
              f"{'ok' if parity else 'MISMATCH'}")
    if hard_total:
        cubes_ok = cubes_ok and hard_wins >= 2
        criterion = (
            "the oversubscribed criterion (certified + engaged + bounded "
            "overhead)" if oversubscribed else "speedup > 1.0 and a "
            "shared-bound hit"
        )
        print(f"cubes hard cases: {hard_wins}/{hard_total} met {criterion} "
              f"(need >= 2; host has {host_cores} core(s) for 4 lanes)")
    return {
        "cases": rows,
        "jobs": 4,
        "count": 4,
        "host_cores": host_cores,
        "oversubscribed": oversubscribed,
        "hard_wins": hard_wins,
        "cubes_ok": cubes_ok,
    }


# ---------------------------------------------------------------------------
# obs scenario: tracing/metrics overhead and span-tree completeness (schema v9)
# ---------------------------------------------------------------------------
#: The overhead gate: tracing+metrics on must stay within this fraction of
#: tracing-off on the suite's per-task geometric mean.
OBS_OVERHEAD_THRESHOLD = 0.05

#: Tasks faster than this (untraced) are excluded from the overhead
#: geomean — at millisecond scale the ratio measures timer noise, not
#: instrumentation cost.  They still run in both modes.
OBS_TIMING_FLOOR = 0.05


def _trace_tree_gate(path: Path) -> dict[str, object]:
    """Load a merged trace and check the acceptance tree invariants.

    Shares :mod:`repro.obs.analyze` with the ``repro-pebble trace`` CLI,
    so what this gate certifies is exactly what ``trace summarize``
    reports: a complete tree (every parent resolvable) whose ``sat.call``
    spans all carry their ``bound`` and ``verdict`` attributes.
    """
    from repro.obs.analyze import load_trace

    trace = load_trace(path)
    sat_calls = [r for r in trace.spans if r["name"] == "sat.call"]
    # Every SAT-call span must carry its bound; a call that *completed*
    # must carry its verdict too (a span whose call died to an injected
    # fault is marked status="error" instead — there is no verdict).
    sat_attributed = bool(sat_calls) and all(
        "bound" in r.get("attrs", {})
        and ("verdict" in r.get("attrs", {}) or r.get("status") == "error")
        for r in sat_calls
    )
    events: dict[str, int] = {}
    for record in trace.events:
        events[record["name"]] = events.get(record["name"], 0) + 1
    return {
        "spans": len(trace.spans),
        "events": len(trace.events),
        "processes": len({r.get("pid") for r in trace.spans}),
        "complete": trace.complete,
        "sat_call_spans": len(sat_calls),
        "sat_calls_attributed": sat_attributed,
        "event_names": dict(sorted(events.items())),
        "problems": trace.problems[:5],
    }


def run_obs_bench(*, quick: bool = False, repeat: int = 1) -> dict[str, object]:
    """Gate the observability layer: overhead and span-tree completeness.

    Three gates, folded into ``obs_ok``:

    * **overhead** — the batch suite solved with tracing+metrics off and
      on (best-of ``repeat`` per task); the geometric mean of the
      per-task runtime ratios over the timer-reliable tasks must stay
      under ``1 + OBS_OVERHEAD_THRESHOLD`` (instrumentation must be
      cheap enough to leave on); binding on full runs only — quick/smoke
      runs report it advisorily, their two above-floor tasks cannot
      resolve 5% against scheduler noise;
    * **portfolio tree** — a traced portfolio run on the flaky ``chaos``
      backend under a retry policy must spend at least one retry and
      merge into a complete span tree with attributed ``sat.call`` spans
      and the retry visible as a ``task.retry`` event;
    * **cube tree** — a traced ``cubes=4`` search must cancel at least
      one losing lane (first-winner certification) and likewise merge
      into a complete, attributed tree.
    """
    import tempfile

    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace

    suite = "smoke" if quick else "default"
    tasks = tasks_from_suite(suite, time_limit=60.0)
    was_enabled = obs_metrics.enabled()

    def _suite_runtimes(trace_dir: "Path | None") -> dict[str, float]:
        # Best-of-three minimum even when the harness runs single-pass:
        # the overhead gate divides runtimes, so scheduler noise that the
        # other scenarios tolerate would fail this one spuriously.
        best: dict[str, float] = {}
        for attempt in range(max(3, repeat)):
            if trace_dir is None:
                obs_metrics.disable()
                records = run_portfolio(tasks)
            else:
                obs_metrics.enable()
                with obs_trace.tracer(trace_dir / f"overhead-{attempt}.jsonl"):
                    records = run_portfolio(tasks)
            for record in records:
                previous = best.get(record.name)
                if previous is None or record.runtime < previous:
                    best[record.name] = record.runtime
        return best

    try:
        with tempfile.TemporaryDirectory(prefix="repro-obs-bench-") as tmp:
            tmpdir = Path(tmp)
            plain = _suite_runtimes(None)
            traced = _suite_runtimes(tmpdir)
            ratios = {
                name: traced[name] / max(plain[name], 1e-9)
                for name in plain
                if plain[name] >= OBS_TIMING_FLOOR
                and traced[name] >= OBS_TIMING_FLOOR
            }
            if ratios:
                overhead_geomean = math.exp(
                    sum(math.log(r) for r in ratios.values()) / len(ratios)
                )
            else:
                # Quick suites can be all-tiny; fall back to the summed
                # runtime ratio, which at least aggregates away the noise.
                overhead_geomean = sum(traced.values()) / max(
                    sum(plain.values()), 1e-9
                )
            overhead_ok = overhead_geomean <= 1.0 + OBS_OVERHEAD_THRESHOLD
            # The smoke suite leaves ~2 tasks above the timing floor, each
            # ~0.2 s: the 5% bound sits inside measured scheduler noise
            # (x1.01-x1.06 across identical quick runs on a 1-core host).
            # Quick/smoke runs therefore report the ratio without gating
            # on it — the same exemption the trajectory gate applies —
            # while full runs, whose default suite yields five tasks at
            # x1.03-grade resolution, keep the gate binding.
            overhead_binding = not quick
            print(f"obs overhead suite={suite}: x{overhead_geomean:.3f} over "
                  f"{len(ratios) or len(plain)} task(s)  "
                  f"{'ok' if overhead_ok else 'TOO EXPENSIVE'}"
                  f"{'' if overhead_binding else '  (advisory on quick)'}")

            # Portfolio run with retries: the flaky chaos backend fails every
            # task's first attempt, so the retry machinery must engage and
            # the retries must be visible in the merged trace.
            obs_metrics.enable()
            portfolio_path = tmpdir / "portfolio.jsonl"
            retry_tasks = tasks_from_suite(
                "smoke", time_limit=60.0, backend=f"chaos:{CHAOS_SEED},flaky=1"
            )
            with obs_trace.tracer(portfolio_path):
                retry_records = run_portfolio(retry_tasks, retry=CHAOS_RETRY)
            portfolio_gate = _trace_tree_gate(portfolio_path)
            portfolio_gate["retries"] = sum(r.retries for r in retry_records)
            portfolio_ok = (
                bool(portfolio_gate["complete"])
                and bool(portfolio_gate["sat_calls_attributed"])
                and portfolio_gate["retries"] >= 1
                and portfolio_gate["event_names"].get("task.retry", 0) >= 1
                and all(r.outcome == "solution" for r in retry_records)
            )
            print(f"obs portfolio trace: {portfolio_gate['spans']} spans, "
                  f"retries={portfolio_gate['retries']}, "
                  f"complete={portfolio_gate['complete']}  "
                  f"{'ok' if portfolio_ok else 'FAILED'}")

            # Cube run with cancellation: four lanes, first winner cancels
            # the rest; the merged tree must still resolve every parent.
            cube_path = tmpdir / "cubes.jsonl"
            with obs_trace.tracer(cube_path):
                result = ReversiblePebblingSolver(load_workload("c17")).solve(
                    4, time_limit=60.0, cubes=4, cube_jobs=2
                )
            cube_gate = _trace_tree_gate(cube_path)
            cancelled = len((result.cubes or {}).get("cancelled", ()))
            cube_gate["cancelled_lanes"] = cancelled
            # The cube machinery must be *visible* in the merged trace:
            # a cancelled lane, a board certification, or a shared-bound
            # hit (board.hit events come from lane pids, so any of these
            # also witnesses cross-process event merging).  Which one
            # fires depends on lane interleaving — all are equally valid.
            cube_events = cube_gate["event_names"]
            cube_ok = (
                bool(cube_gate["complete"])
                and bool(cube_gate["sat_calls_attributed"])
                and result.found
                and (
                    cancelled >= 1
                    or cube_events.get("cubes.certified", 0) >= 1
                    or cube_events.get("board.hit", 0) >= 1
                )
            )
            print(f"obs cube trace: {cube_gate['spans']} spans across "
                  f"{cube_gate['processes']} processes, "
                  f"cancelled={cancelled}, complete={cube_gate['complete']}  "
                  f"{'ok' if cube_ok else 'FAILED'}")
    finally:
        if was_enabled:
            obs_metrics.enable()
        else:
            obs_metrics.disable()

    obs_ok = (overhead_ok or not overhead_binding) and portfolio_ok and cube_ok
    return {
        "suite": suite,
        "overhead_threshold": OBS_OVERHEAD_THRESHOLD,
        "overhead_binding": overhead_binding,
        "overhead_geomean": round(overhead_geomean, 4),
        "overhead_tasks": {
            name: {
                "plain_s": round(plain[name], 3),
                "traced_s": round(traced[name], 3),
                "ratio": round(ratio, 3),
            }
            for name, ratio in sorted(ratios.items())
        },
        "overhead_ok": overhead_ok,
        "portfolio_trace": portfolio_gate,
        "portfolio_ok": portfolio_ok,
        "cube_trace": cube_gate,
        "cube_ok": cube_ok,
        "obs_ok": obs_ok,
    }


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------
def _best_of(run: Callable[[type], dict[str, object]], engine: type, repeat: int) -> dict[str, object]:
    best: dict[str, object] | None = None
    for _ in range(max(1, repeat)):
        outcome = run(engine)
        if best is None or outcome["seconds"] < best["seconds"]:
            best = outcome
    assert best is not None
    return best


def next_bench_path(directory: Path) -> Path:
    """Return ``BENCH_<n>.json`` for the smallest unused ``n`` >= 1."""
    used = set()
    for existing in directory.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_(\d+)\.json", existing.name)
        if match:
            used.add(int(match.group(1)))
    index = 1
    while index in used:
        index += 1
    return directory / f"BENCH_{index}.json"


def run_engine_bench(
    *, quick: bool = False, repeat: int = 1
) -> tuple[list[dict[str, object]], float, bool]:
    """Run the instance set under both engines (legacy vs current).

    Returns the per-instance rows, the geometric-mean speedup over the
    timer-reliable instances, and whether every verdict/step count matched.
    """
    instances = [
        instance for instance in instance_set() if instance.quick or not quick
    ]
    rows: list[dict[str, object]] = []
    speedups: list[float] = []
    all_match = True
    for instance in instances:
        legacy = _best_of(instance.run, LegacyCdclSolver, repeat)
        current = _best_of(instance.run, CdclSolver, repeat)
        match = (
            legacy["verdict"] == current["verdict"]
            and legacy["steps"] == current["steps"]
        )
        all_match = all_match and match
        speedup = legacy["seconds"] / max(current["seconds"], 1e-9)
        # Instances below ~50 ms are dominated by encoding/setup work and
        # timer noise rather than the SAT engine; they stay in the set for
        # verdict/step-count tracking but are kept out of the mean.
        if legacy["seconds"] >= 0.05 and current["seconds"] >= 0.05:
            speedups.append(speedup)
        rows.append(
            {
                "name": instance.name,
                "kind": instance.kind,
                "legacy": legacy,
                "current": current,
                "speedup": round(speedup, 3),
                "verdict_match": match,
            }
        )
        print(
            f"{instance.name:26s} legacy {legacy['seconds']:8.3f}s  "
            f"current {current['seconds']:8.3f}s  x{speedup:5.2f}  "
            f"{'ok' if match else 'VERDICT MISMATCH'}"
        )
    geomean = (
        math.exp(sum(math.log(value) for value in speedups) / len(speedups))
        if speedups
        else 1.0
    )
    return rows, geomean, all_match


#: Scenario registry: name -> (report key, gate key, one-line description).
#: ``engine`` is special-cased in :func:`run_benchmarks` (it contributes
#: both the ``instances`` rows and ``geometric_mean_speedup``).
SCENARIOS: dict[str, tuple[str, str, str]] = {
    "engine": ("instances", "verdict_match",
               "legacy vs current CDCL on the fixed instance set"),
    "portfolio": ("portfolio", "results_match",
                  "batch suite at several --jobs widths"),
    "compile": ("compile", "all_verified",
                "end-to-end pipeline (pebble, compile, lower, verify, cost)"),
    "cache": ("cache", "cache_ok",
              "result store: cold vs warm-started vs cache-hit searches"),
    "backends": ("backends", "verdicts_match",
                 "verdict/step parity across cdcl, dpll and the external stub"),
    "simplify": ("simplify", "simplify_ok",
                 "simplification ablations: full engine vs bve/vivify/chrono "
                 "off (verdict parity + per-technique attribution)"),
    "core_guided": ("core_guided", "core_ok",
                    "plain vs core-guided geometric-refine"),
    "chaos": ("chaos", "chaos_ok",
              "fault injection, retries and anytime answers"),
    "profile": ("profile", "phases_present",
                "per-phase time splits and LBD counters, current engine only"),
    "cubes": ("cubes", "cubes_ok",
              "cube-and-conquer (cubes=4, jobs=4) vs the sequential search"),
    "obs": ("obs", "obs_ok",
            "tracing/metrics overhead gate and span-tree completeness"),
}


def parse_scenarios(selector: str | None) -> list[str]:
    """Validate a ``--scenario`` selector into an ordered scenario list."""
    if selector is None:
        return list(SCENARIOS)
    chosen: list[str] = []
    for token in selector.split(","):
        name = token.strip()
        if not name:
            continue
        if name not in SCENARIOS:
            raise SystemExit(
                f"unknown scenario {name!r}; known scenarios: "
                f"{', '.join(SCENARIOS)}"
            )
        if name not in chosen:
            chosen.append(name)
    if not chosen:
        raise SystemExit("--scenario selected nothing")
    return [name for name in SCENARIOS if name in chosen]


def check_trajectory(
    geomean: float, directory: Path,
    *, threshold: float = TRAJECTORY_REGRESSION_THRESHOLD,
) -> dict[str, object]:
    """Compare ``geomean`` against the newest tracked ``BENCH_<n>.json``.

    Returns the gate record for the report: the previous file and its
    geomean, the ratio, and ``ok`` — ``False`` only when the new geomean
    dropped more than ``threshold`` below the previous one.  With no
    usable previous report the gate passes vacuously.
    """
    previous_path: Path | None = None
    previous_index = -1
    for existing in directory.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_(\d+)\.json", existing.name)
        if match and int(match.group(1)) > previous_index:
            previous_index = int(match.group(1))
            previous_path = existing
    record: dict[str, object] = {
        "previous": previous_path.name if previous_path else None,
        "previous_geomean": None,
        "ratio": None,
        "threshold": threshold,
        "ok": True,
    }
    if previous_path is None:
        return record
    try:
        previous_geomean = json.loads(previous_path.read_text(encoding="utf-8"))[
            "geometric_mean_speedup"
        ]
    except (OSError, ValueError, KeyError):
        return record
    if not isinstance(previous_geomean, (int, float)) or previous_geomean <= 0:
        return record
    ratio = geomean / previous_geomean
    record["previous_geomean"] = previous_geomean
    record["ratio"] = round(ratio, 3)
    record["ok"] = ratio >= 1.0 - threshold
    return record


def run_benchmarks(
    *,
    quick: bool = False,
    repeat: int = 1,
    scenarios: Sequence[str] | None = None,
) -> dict[str, object]:
    """Run the selected scenarios and return the report dict.

    ``scenarios`` is an ordered subset of :data:`SCENARIOS` (``None`` runs
    everything).  Skipped scenarios are absent from the report — their
    gates do not vacuously pass, they simply are not part of this run —
    and ``all_verdicts_match`` folds only over what actually ran.
    """
    selected = list(SCENARIOS) if scenarios is None else list(scenarios)
    report: dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": "quick" if quick else "full",
        "repeat": repeat,
        "python": sys.version.split()[0],
        "scenarios": selected,
    }
    all_match = True
    first = True
    for name in selected:
        if not first:
            print()
        first = False
        if name == "engine":
            rows, geomean, engine_match = run_engine_bench(
                quick=quick, repeat=repeat
            )
            report["instances"] = rows
            report["geometric_mean_speedup"] = round(geomean, 3)
            all_match = all_match and engine_match
            continue
        runner = {
            "portfolio": lambda: run_portfolio_bench(
                quick=quick, jobs_list=(1, 2) if quick else (1, 4)
            ),
            "compile": lambda: run_compile_bench(quick=quick),
            "cache": lambda: run_cache_bench(quick=quick),
            "backends": lambda: run_backend_bench(quick=quick),
            "simplify": lambda: run_simplify_bench(quick=quick),
            "core_guided": lambda: run_core_guided_bench(quick=quick),
            "chaos": lambda: run_chaos_bench(quick=quick),
            "profile": lambda: run_profile_bench(quick=quick),
            "cubes": lambda: run_cubes_bench(quick=quick, repeat=repeat),
            "obs": lambda: run_obs_bench(quick=quick, repeat=repeat),
        }[name]
        key, gate, _ = SCENARIOS[name]
        scenario_report = runner()
        report[key] = scenario_report
        all_match = all_match and bool(scenario_report[gate])
    report["all_verdicts_match"] = all_match
    if "geometric_mean_speedup" in report:
        print(f"\ngeometric-mean speedup: x{report['geometric_mean_speedup']:.2f}  "
              f"verdicts {'all match' if all_match else 'MISMATCH'}")
    else:
        print(f"\nverdicts {'all match' if all_match else 'MISMATCH'}")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke subset (small instances only)")
    parser.add_argument("--smoke", action="store_true", dest="quick",
                        help="alias for --quick")
    parser.add_argument("--repeat", type=int, default=None,
                        help="best-of-N timing per engine "
                             "(default: 3 for full runs, 1 for --quick)")
    parser.add_argument("--write", action="store_true",
                        help="write BENCH_<n>.json even in --quick mode")
    parser.add_argument("--out", type=Path, default=ROOT,
                        help="directory for BENCH_<n>.json (default: repo root)")
    parser.add_argument("--out-file", type=Path, default=None,
                        help="also write the report JSON to this exact path "
                             "(CI artifacts; independent of --write)")
    parser.add_argument("--scenario", default=None, metavar="NAME[,NAME...]",
                        help="run only these scenarios (see --list-scenarios)")
    parser.add_argument("--list-scenarios", action="store_true",
                        help="list scenario names and exit")
    arguments = parser.parse_args(argv)
    if arguments.repeat is None:
        # Full runs are the tracked trajectory: best-of-three per engine
        # keeps scheduler noise out of it.  Quick runs never gate on
        # timings, so one pass is enough.
        arguments.repeat = 1 if arguments.quick else 3
    if arguments.list_scenarios:
        for name, (_, _, description) in SCENARIOS.items():
            print(f"{name:12s} {description}")
        return 0
    selected = parse_scenarios(arguments.scenario)
    report = run_benchmarks(
        quick=arguments.quick, repeat=arguments.repeat, scenarios=selected
    )
    failed = not report["all_verdicts_match"]
    # Trajectory gate: a full engine run must not regress the tracked
    # geomean by more than the threshold.  Quick/smoke runs are exempt —
    # their timings are noise — as are runs that skipped the engine
    # scenario entirely.
    if not arguments.quick and "geometric_mean_speedup" in report:
        trajectory = check_trajectory(
            report["geometric_mean_speedup"], arguments.out
        )
        report["trajectory"] = trajectory
        if trajectory["previous_geomean"] is not None:
            state = "ok" if trajectory["ok"] else "REGRESSION"
            print(f"trajectory vs {trajectory['previous']}: "
                  f"x{trajectory['previous_geomean']:.2f} -> "
                  f"x{report['geometric_mean_speedup']:.2f} "
                  f"(ratio {trajectory['ratio']})  {state}")
        if not trajectory["ok"]:
            failed = True
    if not arguments.quick or arguments.write:
        path = next_bench_path(arguments.out)
        path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {path}")
    if arguments.out_file is not None:
        arguments.out_file.parent.mkdir(parents=True, exist_ok=True)
        arguments.out_file.write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote {arguments.out_file}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
