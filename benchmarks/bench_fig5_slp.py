"""Experiment E2 — Fig. 5: pebbling a cryptographic straight-line program
with decreasing ancilla budgets.

The paper pebbles the point-addition straight-line program of Bos et al.
with 24, 20, 16, 12 and 10 pebbles and reports, for each budget, the number
of executed operations per type (Add/Sub/Sqr/Mult) and the memory-usage
curve.  This harness runs the same sweep on our Kummer-surface point
addition (40 word-level operations).  The pure-Python SAT solver cannot
reach the tightest budgets of the paper within a laptop-scale time budget,
so the sweep stops where the solver starts timing out; the qualitative
shape — fewer pebbles means more executed operations — is what is checked.
"""

from __future__ import annotations

from conftest import run_once

from repro.pebbling import eager_bennett_strategy, pebble_dag
from repro.slp import kummer_point_addition_slp
from repro.visualize import memory_profile_chart
from repro.workloads import load_workload

#: Pebble budgets swept by the harness (the paper uses 24..10 on a ~38-node
#: program; the Bennett baseline of our 40-node program needs 37 pebbles).
BUDGETS = [30, 26, 24, 22]
TIME_LIMIT_PER_BUDGET = 120.0


def test_fig5_budget_sweep(benchmark, record):
    program = kummer_point_addition_slp()
    dag = program.to_dag()
    baseline = eager_bennett_strategy(dag)

    def experiment():
        results = {}
        for budget in BUDGETS:
            outcome = pebble_dag(
                dag, budget, time_limit=TIME_LIMIT_PER_BUDGET, step_schedule="geometric"
            )
            if outcome.found:
                results[budget] = outcome.strategy.remove_redundant_moves()
        return results

    results = run_once(benchmark, experiment)
    assert results, "no budget produced a strategy"

    lines = [
        f"workload: {dag.name} ({dag.num_nodes} operations, "
        f"{len(dag.outputs())} outputs)",
        f"Bennett baseline: {baseline.max_pebbles} pebbles, {baseline.num_moves} operations",
        "",
        "pebbles  operations  add  sub  mul  sqr  cmul  memory profile",
    ]
    previous_moves = baseline.num_moves
    for budget in BUDGETS:
        strategy = results.get(budget)
        if strategy is None:
            lines.append(f"{budget:7d}  (no solution within {TIME_LIMIT_PER_BUDGET:.0f} s)")
            continue
        counts = strategy.operation_counts()
        lines.append(
            f"{strategy.max_pebbles:7d}  {strategy.num_moves:10d}  "
            f"{counts.get('add', 0):3d}  {counts.get('sub', 0):3d}  "
            f"{counts.get('mul', 0):3d}  {counts.get('sqr', 0):3d}  "
            f"{counts.get('cmul', 0):4d}  {memory_profile_chart(strategy)}"
        )
        # Qualitative Fig. 5 shape: tighter budgets never need fewer
        # operations than the Bennett minimum.
        assert strategy.num_moves >= baseline.num_moves
        previous_moves = strategy.num_moves
    lines.append("")
    lines.append(
        "paper (Fig. 5, different SLP of the same size class): "
        "24 pebbles/74 ops ... 10 pebbles/110 ops"
    )
    record("fig5_slp_budget_sweep", lines)
    assert previous_moves >= baseline.num_moves
