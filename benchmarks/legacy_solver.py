"""Frozen copy of the pre-overhaul CDCL solver (the seed engine).

This module is the performance baseline for ``run_bench.py``: it preserves
the linear-scan VSIDS branching, dict-keyed clause activities and
rebuild-the-watch-list propagation of the engine before the hot-path
overhaul, so every benchmark run can report an honest engine-vs-engine
speedup on identical instances.  Do not optimise this file.
"""


from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Sequence

from repro.errors import SolverError
from repro.sat.cnf import Cnf


class Status(Enum):
    """Result status of a solver call."""

    SATISFIABLE = "sat"
    UNSATISFIABLE = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SolverStats:
    """Counters describing the work performed by the solver."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    deleted_clauses: int = 0
    max_decision_level: int = 0
    solve_time: float = 0.0

    def as_dict(self) -> dict[str, float]:
        """Return the statistics as a plain dictionary."""
        return {
            "decisions": self.decisions,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "restarts": self.restarts,
            "learned_clauses": self.learned_clauses,
            "deleted_clauses": self.deleted_clauses,
            "max_decision_level": self.max_decision_level,
            "solve_time": self.solve_time,
        }


@dataclass
class SolveResult:
    """Outcome of a :meth:`LegacyCdclSolver.solve` call.

    ``model`` maps every problem variable to a Boolean when the status is
    :attr:`Status.SATISFIABLE`, and is ``None`` otherwise.
    """

    status: Status
    model: dict[int, bool] | None = None
    stats: SolverStats = field(default_factory=SolverStats)

    @property
    def is_sat(self) -> bool:
        """``True`` when a satisfying assignment was found."""
        return self.status is Status.SATISFIABLE

    @property
    def is_unsat(self) -> bool:
        """``True`` when the formula was proven unsatisfiable."""
        return self.status is Status.UNSATISFIABLE

    @property
    def is_unknown(self) -> bool:
        """``True`` when the solver gave up (conflict/time budget)."""
        return self.status is Status.UNKNOWN


_UNASSIGNED = -1


def _encode(literal: int) -> int:
    """DIMACS literal -> internal literal."""
    return (abs(literal) << 1) | (literal < 0)


def _decode(encoded: int) -> int:
    """Internal literal -> DIMACS literal."""
    variable = encoded >> 1
    return -variable if encoded & 1 else variable


def luby(index: int) -> int:
    """Return the ``index``-th element (1-based) of the Luby restart sequence.

    The sequence is 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
    """
    if index <= 0:
        raise SolverError("luby index must be >= 1")
    while True:
        k = 1
        while (1 << k) - 1 < index:
            k += 1
        if (1 << k) - 1 == index:
            return 1 << (k - 1)
        index -= (1 << (k - 1)) - 1


class LegacyCdclSolver:
    """Conflict-driven clause-learning SAT solver.

    Typical use::

        solver = LegacyCdclSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        result = solver.solve()
        assert result.is_sat and result.model[2] is True

    The solver is incremental: more clauses may be added after a
    :meth:`solve` call and subsequent calls reuse learned clauses.
    Assumptions allow solving under temporary unit hypotheses without
    permanently adding them.
    """

    def __init__(
        self,
        cnf: Cnf | None = None,
        *,
        conflict_limit: int | None = None,
        time_limit: float | None = None,
        restart_base: int = 100,
        clause_decay: float = 0.999,
        variable_decay: float = 0.95,
        random_seed: int = 2019,
    ) -> None:
        self._num_vars = 0
        # Indexed by variable (1-based).
        self._values: list[int] = [_UNASSIGNED, _UNASSIGNED]
        self._levels: list[int] = [0, 0]
        self._reasons: list[list[int] | None] = [None, None]
        self._activity: list[float] = [0.0, 0.0]
        self._phase: list[bool] = [False, False]
        self._seen: list[bool] = [False, False]
        # Indexed by encoded literal.
        self._watches: list[list[list[int]]] = [[], [], [], []]
        self._clauses: list[list[int]] = []
        self._learned: list[list[int]] = []
        self._clause_activity: dict[int, float] = {}
        self._trail: list[int] = []
        self._trail_limits: list[int] = []
        self._propagation_head = 0
        self._var_inc = 1.0
        self._var_decay = variable_decay
        self._cla_inc = 1.0
        self._cla_decay = clause_decay
        self._restart_base = restart_base
        self._ok = True
        self._pending_units: list[int] = []
        self.default_conflict_limit = conflict_limit
        self.default_time_limit = time_limit
        self.stats = SolverStats()
        self._rng_state = random_seed or 1
        if cnf is not None:
            self.add_cnf(cnf)

    # ------------------------------------------------------------------
    # problem construction
    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        """Highest variable index known to the solver."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Number of problem (non-learned) clauses."""
        return len(self._clauses)

    def _ensure_var(self, variable: int) -> None:
        while self._num_vars < variable:
            self._num_vars += 1
            self._values.append(_UNASSIGNED)
            self._levels.append(0)
            self._reasons.append(None)
            self._activity.append(0.0)
            self._phase.append(False)
            self._seen.append(False)
            self._watches.append([])
            self._watches.append([])

    def add_variable(self) -> int:
        """Allocate a fresh variable and return its index."""
        self._ensure_var(self._num_vars + 1)
        return self._num_vars

    def add_cnf(self, cnf: Cnf) -> None:
        """Add every clause of ``cnf`` to the solver."""
        self._ensure_var(cnf.num_variables)
        for clause in cnf.clauses:
            self.add_clause(clause.literals)

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; return ``False`` if the formula became trivially unsat.

        The clause is simplified: duplicate literals are merged and
        tautological clauses are dropped.
        """
        if not self._ok:
            return False
        unique: dict[int, None] = {}
        for literal in literals:
            if isinstance(literal, bool) or not isinstance(literal, int) or literal == 0:
                raise SolverError(f"invalid literal {literal!r}")
            unique.setdefault(literal, None)
        clause = list(unique)
        for literal in clause:
            self._ensure_var(abs(literal))
        literal_set = set(clause)
        if any(-literal in literal_set for literal in clause):
            return True  # tautology
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            self._pending_units.append(clause[0])
            return True
        encoded = [_encode(literal) for literal in clause]
        self._attach(encoded, learned=False)
        return True

    def _attach(self, encoded_clause: list[int], *, learned: bool) -> list[int]:
        container = self._learned if learned else self._clauses
        container.append(encoded_clause)
        self._watches[encoded_clause[0] ^ 1].append(encoded_clause)
        self._watches[encoded_clause[1] ^ 1].append(encoded_clause)
        if learned:
            self._clause_activity[id(encoded_clause)] = self._cla_inc
        return encoded_clause

    # ------------------------------------------------------------------
    # assignment handling
    # ------------------------------------------------------------------
    def _value_of(self, encoded: int) -> int:
        """Return 1 (true), 0 (false) or -1 (unassigned) for a literal."""
        value = self._values[encoded >> 1]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value ^ (encoded & 1)

    def _enqueue(self, encoded: int, reason: list[int] | None) -> bool:
        variable = encoded >> 1
        value = self._values[variable]
        desired = 1 - (encoded & 1)
        if value != _UNASSIGNED:
            return value == desired
        self._values[variable] = desired
        self._levels[variable] = len(self._trail_limits)
        self._reasons[variable] = reason
        self._phase[variable] = bool(desired)
        self._trail.append(encoded)
        return True

    def _propagate(self) -> list[int] | None:
        """Unit propagation; return a conflicting clause or ``None``."""
        values = self._values
        watches = self._watches
        propagations = 0
        while self._propagation_head < len(self._trail):
            propagated = self._trail[self._propagation_head]
            self._propagation_head += 1
            propagations += 1
            watch_list = watches[propagated]
            new_watch_list: list[list[int]] = []
            index = 0
            total = len(watch_list)
            conflict: list[int] | None = None
            while index < total:
                clause = watch_list[index]
                index += 1
                # Make sure the falsified literal is in position 1.
                false_literal = propagated ^ 1
                if clause[0] == false_literal:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                first_value = values[first >> 1]
                if first_value != _UNASSIGNED and (first_value ^ (first & 1)) == 1:
                    new_watch_list.append(clause)
                    continue
                # Look for a new literal to watch.
                found = False
                for position in range(2, len(clause)):
                    candidate = clause[position]
                    candidate_value = values[candidate >> 1]
                    if candidate_value == _UNASSIGNED or (candidate_value ^ (candidate & 1)) == 1:
                        clause[1], clause[position] = clause[position], clause[1]
                        watches[clause[1] ^ 1].append(clause)
                        found = True
                        break
                if found:
                    continue
                new_watch_list.append(clause)
                # Clause is unit or conflicting on clause[0].
                if first_value == _UNASSIGNED:
                    if not self._enqueue(first, clause):  # pragma: no cover - defensive
                        conflict = clause
                        break
                else:
                    conflict = clause
                    break
            if conflict is not None:
                new_watch_list.extend(watch_list[index:])
                watches[propagated] = new_watch_list
                self._propagation_head = len(self._trail)
                self.stats.propagations += propagations
                return conflict
            watches[propagated] = new_watch_list
        self.stats.propagations += propagations
        return None

    # ------------------------------------------------------------------
    # conflict analysis
    # ------------------------------------------------------------------
    def _bump_variable(self, variable: int) -> None:
        self._activity[variable] += self._var_inc
        if self._activity[variable] > 1e100:
            for index in range(1, self._num_vars + 1):
                self._activity[index] *= 1e-100
            self._var_inc *= 1e-100

    def _decay_variable_activity(self) -> None:
        self._var_inc /= self._var_decay

    def _bump_clause(self, clause: list[int]) -> None:
        key = id(clause)
        if key in self._clause_activity:
            self._clause_activity[key] += self._cla_inc
            if self._clause_activity[key] > 1e20:
                for other in self._clause_activity:
                    self._clause_activity[other] *= 1e-20
                self._cla_inc *= 1e-20

    def _decay_clause_activity(self) -> None:
        self._cla_inc /= self._cla_decay

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP conflict analysis.

        Returns the learned clause (encoded literals, asserting literal
        first) and the backjump level.
        """
        learned: list[int] = [0]  # placeholder for the asserting literal
        seen = self._seen
        levels = self._levels
        reasons = self._reasons
        current_level = len(self._trail_limits)
        counter = 0
        literal = -1
        trail_index = len(self._trail) - 1
        clause: list[int] | None = conflict

        while True:
            assert clause is not None
            self._bump_clause(clause)
            start = 0 if literal == -1 else 1
            for position in range(start, len(clause)):
                other = clause[position]
                variable = other >> 1
                if not seen[variable] and levels[variable] > 0:
                    seen[variable] = True
                    self._bump_variable(variable)
                    if levels[variable] >= current_level:
                        counter += 1
                    else:
                        learned.append(other)
            # Pick the next literal from the trail to resolve on.
            while not seen[self._trail[trail_index] >> 1]:
                trail_index -= 1
            literal = self._trail[trail_index]
            trail_index -= 1
            variable = literal >> 1
            seen[variable] = False
            counter -= 1
            if counter == 0:
                break
            clause = reasons[variable]
            # When resolving, position 0 of the reason holds ``literal``
            # itself; make sure that is the case.
            if clause is not None and clause[0] != literal:
                clause = [literal] + [lit for lit in clause if lit != literal]
        learned[0] = literal ^ 1

        # Clause minimisation: drop literals implied by the rest of the
        # clause through their reasons (self-subsumption).
        minimized = [learned[0]]
        learned_vars = {lit >> 1 for lit in learned}
        for other in learned[1:]:
            reason = reasons[other >> 1]
            if reason is None:
                minimized.append(other)
                continue
            if any((lit >> 1) not in learned_vars and levels[lit >> 1] > 0
                   for lit in reason if lit != (other ^ 1)):
                minimized.append(other)

        # Reset the 'seen' markers for every literal collected during the
        # analysis (including the ones dropped by minimisation), otherwise
        # stale markers corrupt the next conflict analysis.
        for other in learned:
            seen[other >> 1] = False
        learned = minimized

        if len(learned) == 1:
            backjump_level = 0
        else:
            # Find the literal with the highest level below the current one
            # and move it to position 1 (it becomes the second watch).
            best_index = 1
            best_level = levels[learned[1] >> 1]
            for position in range(2, len(learned)):
                level = levels[learned[position] >> 1]
                if level > best_level:
                    best_level = level
                    best_index = position
            learned[1], learned[best_index] = learned[best_index], learned[1]
            backjump_level = best_level
        return learned, backjump_level

    def _backtrack(self, level: int) -> None:
        if len(self._trail_limits) <= level:
            return
        limit = self._trail_limits[level]
        for encoded in reversed(self._trail[limit:]):
            variable = encoded >> 1
            self._values[variable] = _UNASSIGNED
            self._reasons[variable] = None
        del self._trail[limit:]
        del self._trail_limits[level:]
        self._propagation_head = min(self._propagation_head, len(self._trail))

    # ------------------------------------------------------------------
    # decision heuristics
    # ------------------------------------------------------------------
    def _random(self) -> float:
        # xorshift32: deterministic, cheap, good enough for tie-breaking.
        state = self._rng_state
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        self._rng_state = state & 0xFFFFFFFF
        return self._rng_state / 0xFFFFFFFF

    def _pick_branch_variable(self) -> int:
        """Return the unassigned variable with the highest activity."""
        best_variable = 0
        best_activity = -1.0
        values = self._values
        activity = self._activity
        for variable in range(1, self._num_vars + 1):
            if values[variable] == _UNASSIGNED and activity[variable] > best_activity:
                best_activity = activity[variable]
                best_variable = variable
        return best_variable

    # ------------------------------------------------------------------
    # learned clause database management
    # ------------------------------------------------------------------
    def _reduce_learned(self) -> None:
        if len(self._learned) < 50:
            return
        locked = {id(reason) for reason in self._reasons if reason is not None}
        ranked = sorted(
            self._learned,
            key=lambda clause: self._clause_activity.get(id(clause), 0.0),
        )
        to_remove = set()
        for clause in ranked[: len(ranked) // 2]:
            if id(clause) in locked or len(clause) <= 2:
                continue
            to_remove.add(id(clause))
        if not to_remove:
            return
        kept: list[list[int]] = []
        for clause in self._learned:
            if id(clause) in to_remove:
                self._detach(clause)
                self._clause_activity.pop(id(clause), None)
                self.stats.deleted_clauses += 1
            else:
                kept.append(clause)
        self._learned = kept

    def _detach(self, clause: list[int]) -> None:
        for watch_literal in (clause[0] ^ 1, clause[1] ^ 1):
            watch_list = self._watches[watch_literal]
            for index, watched in enumerate(watch_list):
                if watched is clause:
                    watch_list[index] = watch_list[-1]
                    watch_list.pop()
                    break

    # ------------------------------------------------------------------
    # main search loop
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_limit: int | None = None,
        time_limit: float | None = None,
    ) -> SolveResult:
        """Solve the current formula, optionally under assumptions.

        ``conflict_limit`` and ``time_limit`` bound the search; when either
        budget is exhausted the result status is :attr:`Status.UNKNOWN`.
        """
        start_time = time.monotonic()
        stats = self.stats = SolverStats()
        conflict_limit = conflict_limit if conflict_limit is not None else self.default_conflict_limit
        time_limit = time_limit if time_limit is not None else self.default_time_limit

        if not self._ok:
            stats.solve_time = time.monotonic() - start_time
            return SolveResult(Status.UNSATISFIABLE, None, stats)

        # Start from a clean assignment (incremental interface keeps
        # clauses, not the trail).
        self._backtrack(0)
        for literal in self._pending_units:
            if not self._enqueue(_encode(literal), None):
                self._ok = False
                stats.solve_time = time.monotonic() - start_time
                return SolveResult(Status.UNSATISFIABLE, None, stats)
        self._pending_units.clear()
        if self._propagate() is not None:
            self._ok = False
            stats.solve_time = time.monotonic() - start_time
            return SolveResult(Status.UNSATISFIABLE, None, stats)

        encoded_assumptions = [_encode(literal) for literal in assumptions]
        for literal in assumptions:
            self._ensure_var(abs(literal))

        restart_count = 0
        conflicts_until_restart = self._restart_base * luby(restart_count + 1)
        conflicts_since_restart = 0
        learned_limit = max(1000, self.num_clauses // 2)

        while True:
            if time_limit is not None and (time.monotonic() - start_time) > time_limit:
                self._backtrack(0)
                stats.solve_time = time.monotonic() - start_time
                return SolveResult(Status.UNKNOWN, None, stats)
            if conflict_limit is not None and stats.conflicts >= conflict_limit:
                self._backtrack(0)
                stats.solve_time = time.monotonic() - start_time
                return SolveResult(Status.UNKNOWN, None, stats)

            conflict = self._propagate()
            if conflict is not None:
                stats.conflicts += 1
                conflicts_since_restart += 1
                if not self._trail_limits:
                    # Conflict at decision level 0: under assumptions the
                    # formula may still be satisfiable without them, but this
                    # call is conclusive either way.
                    self._backtrack(0)
                    stats.solve_time = time.monotonic() - start_time
                    if not encoded_assumptions:
                        self._ok = False
                    return SolveResult(Status.UNSATISFIABLE, None, stats)
                learned, backjump_level = self._analyze(conflict)
                self._backtrack(backjump_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        stats.solve_time = time.monotonic() - start_time
                        return SolveResult(Status.UNSATISFIABLE, None, stats)
                    self._pending_units.append(_decode(learned[0]))
                else:
                    clause = self._attach(learned, learned=True)
                    stats.learned_clauses += 1
                    self._enqueue(learned[0], clause)
                self._decay_variable_activity()
                self._decay_clause_activity()
                if len(self._learned) > learned_limit:
                    self._reduce_learned()
                    learned_limit = int(learned_limit * 1.3)
                continue

            if conflicts_since_restart >= conflicts_until_restart:
                restart_count += 1
                stats.restarts += 1
                conflicts_since_restart = 0
                conflicts_until_restart = self._restart_base * luby(restart_count + 1)
                self._backtrack(0)
                continue

            # Place pending assumptions as pseudo-decisions.
            next_assumption = self._next_unassigned_assumption(encoded_assumptions)
            if next_assumption is not None:
                value = self._value_of(next_assumption)
                if value == 0:
                    self._backtrack(0)
                    stats.solve_time = time.monotonic() - start_time
                    return SolveResult(Status.UNSATISFIABLE, None, stats)
                self._trail_limits.append(len(self._trail))
                self._enqueue(next_assumption, None)
                continue

            variable = self._pick_branch_variable()
            if variable == 0:
                model = self._extract_model()
                self._backtrack(0)
                stats.solve_time = time.monotonic() - start_time
                return SolveResult(Status.SATISFIABLE, model, stats)
            stats.decisions += 1
            self._trail_limits.append(len(self._trail))
            stats.max_decision_level = max(stats.max_decision_level, len(self._trail_limits))
            phase = self._phase[variable]
            encoded = (variable << 1) | (0 if phase else 1)
            self._enqueue(encoded, None)

    def _next_unassigned_assumption(self, encoded_assumptions: list[int]) -> int | None:
        for encoded in encoded_assumptions:
            value = self._value_of(encoded)
            if value == _UNASSIGNED or value == 0:
                return encoded
        return None

    def _extract_model(self) -> dict[int, bool]:
        model: dict[int, bool] = {}
        for variable in range(1, self._num_vars + 1):
            value = self._values[variable]
            model[variable] = bool(value) if value != _UNASSIGNED else bool(self._phase[variable])
        return model


def solve_cnf(
    cnf: Cnf,
    assumptions: Sequence[int] = (),
    *,
    conflict_limit: int | None = None,
    time_limit: float | None = None,
) -> SolveResult:
    """One-shot convenience wrapper: build a solver, add ``cnf``, solve."""
    solver = LegacyCdclSolver(cnf)
    return solver.solve(
        assumptions,
        conflict_limit=conflict_limit,
        time_limit=time_limit,
    )
